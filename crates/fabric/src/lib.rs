//! # daos-fabric — OFI-like network fabric model
//!
//! DAOS uses libfabric/OFI over a low-latency interconnect (Omni-Path on the
//! paper's NEXTGenIO testbed). We model the fabric at flow level:
//!
//! * each node owns a full-duplex NIC — independent `tx` and `rx`
//!   [`Pipe`]s at link rate;
//! * the switch is non-blocking (true for the 8–40 node scales here), so a
//!   message's cost is injection (tx), wire latency, and ejection (rx);
//! * large messages are *pipelined* in frames: the transmit of frame `i+1`
//!   overlaps the receive of frame `i`, so one flow reaches line rate while
//!   still contending frame-by-frame with other flows at both endpoints —
//!   this is what produces realistic incast behaviour at the servers.
//!
//! [`Endpoint`] adds an addressable RPC surface on top: register a handler
//! mailbox per node, `call` from anywhere, get a reply future.
//!
//! ## Fault injection
//!
//! The fabric carries mutable fault state — down nodes, pairwise
//! partitions, a uniform message-loss rate and a latency spike — driven by
//! a harness (see `daos_sim::fault`). [`Endpoint::call_deadline`] observes
//! it: an undeliverable request or a lost reply surfaces as
//! [`CallError::Timeout`] after the caller's deadline, exactly as a real
//! Mercury/OFI RPC would. The plain [`Endpoint::call`] fast-fails with
//! `Closed` instead (fire-and-forget callers like the raft wire treat that
//! as message loss).

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::rc::Rc;

use daos_sim::time::{SimDuration, SimTime};
use daos_sim::units::{Bandwidth, Bytes};
use daos_sim::{Pipe, SharedPipe, Sim};

/// Index of a node on the fabric.
pub type NodeId = usize;

/// Fabric-wide parameters.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// Per-direction link bandwidth at every NIC.
    pub link_bw: Bandwidth,
    /// One-way wire + switch latency.
    pub wire_latency: SimDuration,
    /// Pipelining frame: unit of overlap between tx and rx.
    pub frame: u64,
    /// Sender-side CPU cost to inject one message (doorbell, descriptor).
    pub per_msg_cpu: SimDuration,
    /// Bandwidth of the intra-node loopback path (shared-memory copy).
    pub loopback_bw: Bandwidth,
    /// Messages at or below this size ride the eager lane: they pay
    /// injection, serialization and wire latency but do not queue behind
    /// bulk frames. Packet interleaving and virtual-lane arbitration give
    /// small control messages bounded delay on a loaded real fabric —
    /// without this, a heartbeat stuck behind megabytes of bulk data looks
    /// exactly like a dead engine and the failure detector melts down
    /// under saturating I/O.
    pub eager: u64,
}

impl Default for FabricConfig {
    /// 100 Gb/s Omni-Path-class fabric.
    fn default() -> Self {
        FabricConfig {
            link_bw: Bandwidth::gbit_per_sec(100.0),
            wire_latency: SimDuration::from_ns(1_100),
            frame: 128 * 1024,
            per_msg_cpu: SimDuration::from_ns(300),
            loopback_bw: Bandwidth::gib_per_sec(20.0),
            eager: 4096,
        }
    }
}

struct NodeNet {
    tx: SharedPipe,
    rx: SharedPipe,
    loopback: SharedPipe,
}

/// Injected fault state carried by the fabric (all healthy by default).
struct FaultState {
    /// Nodes whose NICs are dark: nothing to or from them is delivered.
    down: RefCell<BTreeSet<NodeId>>,
    /// Severed pairs, stored normalised as `(min, max)`.
    partitions: RefCell<BTreeSet<(NodeId, NodeId)>>,
    /// Uniform message loss, parts per million (0 = lossless).
    drop_ppm: Cell<u32>,
    /// xorshift64 state for loss rolls; seeded with the loss rate.
    drop_rng: Cell<u64>,
    /// Added one-way latency on every inter-node message.
    extra_latency: Cell<u64>,
}

/// The interconnect: a set of NICs plus a non-blocking switch.
pub struct Fabric {
    cfg: FabricConfig,
    nodes: Vec<NodeNet>,
    fault: FaultState,
}

impl Fabric {
    /// Build a fabric with `n` nodes.
    pub fn new(n: usize, cfg: FabricConfig) -> Rc<Self> {
        let nodes = (0..n)
            .map(|i| NodeNet {
                tx: Pipe::new(format!("nic{i}.tx"), cfg.link_bw, SimDuration::ZERO),
                rx: Pipe::new(format!("nic{i}.rx"), cfg.link_bw, SimDuration::ZERO),
                loopback: Pipe::new(format!("nic{i}.lo"), cfg.loopback_bw, SimDuration::ZERO),
            })
            .collect();
        Rc::new(Fabric {
            cfg,
            nodes,
            fault: FaultState {
                down: RefCell::new(BTreeSet::new()),
                partitions: RefCell::new(BTreeSet::new()),
                drop_ppm: Cell::new(0),
                drop_rng: Cell::new(1),
                extra_latency: Cell::new(0),
            },
        })
    }

    // ------------------------------------------------------- fault hooks

    /// Take `node`'s NIC dark: nothing to or from it is delivered until
    /// [`Fabric::set_node_up`].
    pub fn set_node_down(&self, node: NodeId) {
        self.fault.down.borrow_mut().insert(node);
    }
    /// Restore a dark node's NIC.
    pub fn set_node_up(&self, node: NodeId) {
        self.fault.down.borrow_mut().remove(&node);
    }
    /// Whether `node`'s NIC is currently dark.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.fault.down.borrow().contains(&node)
    }
    /// Sever connectivity between `a` and `b` (both directions).
    pub fn partition_between(&self, a: NodeId, b: NodeId) {
        self.fault
            .partitions
            .borrow_mut()
            .insert((a.min(b), a.max(b)));
    }
    /// Remove all partitions and message loss (dark nodes stay dark: they
    /// model crashed hosts, not links).
    pub fn heal_all(&self) {
        self.fault.partitions.borrow_mut().clear();
        self.fault.drop_ppm.set(0);
    }
    /// Drop messages uniformly at `ppm` parts per million, rolled from a
    /// deterministic stream seeded with `seed`.
    pub fn set_drop_rate(&self, ppm: u32, seed: u64) {
        assert!(ppm <= 1_000_000);
        self.fault.drop_ppm.set(ppm);
        self.fault.drop_rng.set(seed | 1);
    }
    /// Add `extra` one-way latency to every inter-node message.
    pub fn set_extra_latency(&self, extra: SimDuration) {
        self.fault.extra_latency.set(extra.as_ns());
    }

    /// Whether a message from `from` could currently reach `to`: both NICs
    /// lit and no partition between them. Does not roll message loss.
    pub fn deliverable(&self, from: NodeId, to: NodeId) -> bool {
        let down = self.fault.down.borrow();
        if down.contains(&from) || down.contains(&to) {
            return false;
        }
        self.fault
            .partitions
            .borrow()
            .get(&(from.min(to), from.max(to)))
            .is_none()
    }

    /// One message-loss roll against the configured drop rate.
    fn dropped(&self) -> bool {
        let ppm = self.fault.drop_ppm.get();
        if ppm == 0 {
            return false;
        }
        let mut s = self.fault.drop_rng.get();
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.fault.drop_rng.set(s);
        s % 1_000_000 < ppm as u64
    }

    /// Combined admission check for one message attempt: connectivity plus
    /// a loss roll. Mutates the loss stream, so call once per attempt.
    fn admit(&self, from: NodeId, to: NodeId) -> bool {
        self.deliverable(from, to) && !self.dropped()
    }

    /// Number of nodes on the fabric.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }
    /// True if the fabric has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Estimated request/response round-trip for a tiny control message.
    pub fn rtt(&self) -> SimDuration {
        (self.cfg.wire_latency + self.cfg.per_msg_cpu) * 2
    }

    /// Move `bytes` from `from` to `to`, returning the completion instant.
    ///
    /// Pipelined across tx/rx in `frame`-sized units; contends FIFO with
    /// concurrent flows at both NICs. Zero-byte messages still pay wire
    /// latency and injection cost (control traffic).
    pub async fn message(&self, sim: &Sim, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        let done = self.reserve_message(sim, from, to, bytes);
        sim.sleep_until(done).await;
        done
    }

    /// Reservation-only variant of [`Fabric::message`]: books the NIC time
    /// and returns the completion instant without awaiting it.
    pub fn reserve_message(&self, sim: &Sim, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        let now = sim.now().as_ns();
        let cpu = self.cfg.per_msg_cpu.as_ns();
        if from == to {
            let lo = &self.nodes[from].loopback;
            let (_, end) = lo.reserve_after(now + cpu, bytes);
            return SimTime::from_ns(end + 200); // shared-memory handoff
        }
        // batched: one read/commit of each NIC's flow state for the whole
        // frame train instead of per-frame counter traffic (the per-frame
        // arithmetic, rounding included, is unchanged)
        let mut tx = self.nodes[from].tx.batch();
        let mut rx = self.nodes[to].rx.batch();
        let wire = self.cfg.wire_latency.as_ns() + self.fault.extra_latency.get();
        let mut remaining = bytes;
        let mut done = now + cpu + wire; // covers the zero-byte case
        let mut first = true;
        while remaining > 0 || first {
            let frame = remaining.min(self.cfg.frame);
            let earliest = if first { now + cpu } else { now };
            let (_, tx_end) = tx.reserve_after(earliest, frame);
            let (_, rx_end) = rx.reserve_after(tx_end + wire, frame);
            done = rx_end;
            remaining -= frame;
            first = false;
        }
        SimTime::from_ns(done)
    }

    /// Deliver a header-only *control* message (RPC without bulk data) on
    /// the eager lane: it pays injection, serialization and wire latency
    /// but does not queue behind bulk frames. Packet interleaving and
    /// virtual-lane arbitration give small control messages bounded delay
    /// on a loaded real fabric — without this, a heartbeat stuck behind
    /// megabytes of bulk data looks exactly like a dead engine and the
    /// failure detector melts down under saturating I/O. Messages above
    /// [`FabricConfig::eager`] fall back to the bulk path.
    pub async fn message_control(
        &self,
        sim: &Sim,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> SimTime {
        if bytes > self.cfg.eager {
            return self.message(sim, from, to, bytes).await;
        }
        let now = sim.now().as_ns();
        let cpu = self.cfg.per_msg_cpu.as_ns();
        let payload = Bytes(bytes);
        let done = if from == to {
            now + cpu + self.cfg.loopback_bw.ns_for_bytes(payload).get() + 200
        } else {
            let wire = self.cfg.wire_latency.as_ns() + self.fault.extra_latency.get();
            now + cpu + self.cfg.link_bw.ns_for_bytes(payload).get() + wire
        };
        let done = SimTime::from_ns(done);
        sim.sleep_until(done).await;
        done
    }

    /// Total bytes ejected at `node` (received).
    pub fn rx_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node].rx.bytes_total()
    }
    /// Total bytes injected at `node` (sent).
    pub fn tx_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node].tx.bytes_total()
    }
}

// ----------------------------------------------------------------- RPC

/// Why an RPC issued with [`Endpoint::call_deadline`] failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallError {
    /// No response within the caller's deadline: the request or reply was
    /// undeliverable (dark NIC, partition, loss) or the server stalled.
    Timeout,
    /// The endpoint dropped the request without replying (server teardown
    /// or a crash racing the in-flight RPC) — a connection reset.
    Closed,
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Timeout => write!(f, "rpc deadline exceeded"),
            CallError::Closed => write!(f, "rpc endpoint closed"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<daos_sim::sync::Closed> for CallError {
    fn from(_: daos_sim::sync::Closed) -> Self {
        CallError::Closed
    }
}

/// An in-flight RPC delivered to a handler, with a reply slot.
pub struct Incoming<Req, Rsp> {
    /// Originating node.
    pub from: NodeId,
    /// The request body.
    pub req: Req,
    /// Payload size the caller attached (already charged on the wire).
    pub bulk_in: u64,
    reply: daos_sim::sync::OneshotSender<(Rsp, u64)>,
}

impl<Req, Rsp> Incoming<Req, Rsp> {
    /// Complete the RPC. `bulk_out` is the size of any bulk payload carried
    /// by the response (e.g. read data); it is charged on the reply path.
    pub fn respond(self, rsp: Rsp, bulk_out: u64) {
        self.reply.send((rsp, bulk_out));
    }

    /// Split into the request body and a detached [`Responder`], so a
    /// handler can consume the request by value (no clone) while keeping
    /// the reply slot to complete later.
    pub fn split(self) -> (Req, Responder<Rsp>) {
        (
            self.req,
            Responder {
                from: self.from,
                bulk_in: self.bulk_in,
                reply: self.reply,
            },
        )
    }
}

/// The reply half of a split [`Incoming`]; see [`Incoming::split`].
pub struct Responder<Rsp> {
    /// Originating node.
    pub from: NodeId,
    /// Payload size the caller attached (already charged on the wire).
    pub bulk_in: u64,
    reply: daos_sim::sync::OneshotSender<(Rsp, u64)>,
}

impl<Rsp> Responder<Rsp> {
    /// Complete the RPC; same contract as [`Incoming::respond`].
    pub fn respond(self, rsp: Rsp, bulk_out: u64) {
        self.reply.send((rsp, bulk_out));
    }
}

/// A mailbox-backed RPC endpoint bound to one fabric node.
///
/// Servers `serve()` requests; clients `call()` them. Request and response
/// wire costs are charged on the fabric, including bulk payloads, which is
/// how RDMA transfers appear at flow level.
pub struct Endpoint<Req, Rsp> {
    fabric: Rc<Fabric>,
    node: NodeId,
    inbox: daos_sim::Mailbox<Incoming<Req, Rsp>>,
    /// Fixed request header size on the wire.
    header: u64,
    calls: RefCell<u64>,
    /// False while the owning service is crashed: requests are not
    /// admitted, distinct from `close()` which tears the inbox down.
    online: Cell<bool>,
}

impl<Req: 'static, Rsp: 'static> Endpoint<Req, Rsp> {
    /// Bind an endpoint to `node`.
    pub fn bind(fabric: Rc<Fabric>, node: NodeId) -> Rc<Self> {
        Rc::new(Endpoint {
            fabric,
            node,
            inbox: daos_sim::Mailbox::new(),
            header: 256,
            calls: RefCell::new(0),
            online: Cell::new(true),
        })
    }

    /// The node this endpoint is bound to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Mark the endpoint (un)reachable — a crashed or restarted service.
    pub fn set_online(&self, online: bool) {
        self.online.set(online);
    }

    /// Whether the endpoint currently admits requests.
    pub fn is_online(&self) -> bool {
        self.online.get()
    }

    /// Number of calls served so far.
    pub fn call_count(&self) -> u64 {
        *self.calls.borrow()
    }

    /// Receive the next incoming RPC (server side). `None` once closed.
    pub async fn serve(&self) -> Option<Incoming<Req, Rsp>> {
        self.inbox.recv().await
    }

    /// Non-blocking receive: the next queued RPC, if any (poll-driven
    /// servers such as the pool-service replica tick loop).
    pub fn try_serve(&self) -> Option<Incoming<Req, Rsp>> {
        self.inbox.try_recv()
    }

    /// Stop accepting new requests.
    pub fn close(&self) {
        self.inbox.close();
    }

    /// One wire leg of an RPC: header-only messages (no bulk attached)
    /// ride the fabric's eager control lane; anything carrying data takes
    /// the bulk path and contends with other flows.
    async fn wire(&self, sim: &Sim, from: NodeId, to: NodeId, bulk: u64) {
        if bulk == 0 {
            self.fabric
                .message_control(sim, from, to, self.header)
                .await;
        } else {
            self.fabric.message(sim, from, to, self.header + bulk).await;
        }
    }

    /// Issue an RPC from `from_node` to this endpoint.
    ///
    /// `bulk_in` bytes ride the request (write payloads); the response
    /// carries whatever the handler attaches (read payloads).
    pub async fn call(
        &self,
        sim: &Sim,
        from_node: NodeId,
        req: Req,
        bulk_in: u64,
    ) -> Result<Rsp, daos_sim::sync::Closed> {
        *self.calls.borrow_mut() += 1;
        if !self.fabric.admit(from_node, self.node) || !self.online.get() {
            // fast-fail for fire-and-forget callers: the message is gone
            return Err(daos_sim::sync::Closed);
        }
        self.wire(sim, from_node, self.node, bulk_in).await;
        let (tx, rx) = daos_sim::oneshot();
        self.inbox.send(Incoming {
            from: from_node,
            req,
            bulk_in,
            reply: tx,
        });
        let (rsp, bulk_out) = rx.await?;
        if !self.fabric.admit(self.node, from_node) {
            return Err(daos_sim::sync::Closed);
        }
        self.wire(sim, self.node, from_node, bulk_out).await;
        Ok(rsp)
    }

    /// Issue an RPC with a deadline: like [`Endpoint::call`], but injected
    /// faults surface as [`CallError::Timeout`] after `deadline` elapses
    /// instead of failing fast — the behaviour a resilient client retries
    /// against. A reply lost on the return path also burns the full
    /// deadline, like a real RPC whose ack vanished.
    pub async fn call_deadline(
        &self,
        sim: &Sim,
        from_node: NodeId,
        req: Req,
        bulk_in: u64,
        deadline: SimDuration,
    ) -> Result<Rsp, CallError> {
        *self.calls.borrow_mut() += 1;
        if !self.fabric.admit(from_node, self.node) || !self.online.get() {
            sim.sleep(deadline).await;
            return Err(CallError::Timeout);
        }
        let attempt = async {
            self.wire(sim, from_node, self.node, bulk_in).await;
            let (tx, rx) = daos_sim::oneshot();
            self.inbox.send(Incoming {
                from: from_node,
                req,
                bulk_in,
                reply: tx,
            });
            let (rsp, bulk_out) = rx.await?;
            if !self.fabric.admit(self.node, from_node) {
                // reply lost in flight: stall until the deadline fires
                std::future::pending::<()>().await;
            }
            self.wire(sim, self.node, from_node, bulk_out).await;
            Ok::<Rsp, CallError>(rsp)
        };
        match daos_sim::timeout(sim, deadline, attempt).await {
            Some(done) => done,
            None => Err(CallError::Timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_sim::executor::join_all;
    use daos_sim::units::{gib_per_sec, MIB};

    fn fab(n: usize) -> Rc<Fabric> {
        Fabric::new(n, FabricConfig::default())
    }

    #[test]
    fn single_flow_reaches_line_rate() {
        let mut sim = Sim::new(1);
        let f = fab(2);
        let secs = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                let t0 = sim.now();
                f.message(&sim, 0, 1, 256 * MIB).await;
                (sim.now() - t0).as_secs_f64()
            }
        });
        let gib_s = gib_per_sec(256 * MIB, secs);
        let line = FabricConfig::default().link_bw.as_gib_per_sec();
        assert!(gib_s > 0.95 * line, "got {gib_s} GiB/s, line {line}");
        assert!(gib_s <= line * 1.01, "faster than line rate: {gib_s}");
    }

    #[test]
    fn incast_shares_receiver_bandwidth() {
        let mut sim = Sim::new(1);
        let f = fab(3);
        let secs = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                let t0 = sim.now();
                let futs: Vec<_> = (0..2)
                    .map(|src| {
                        let f = Rc::clone(&f);
                        let s = sim.clone();
                        async move {
                            f.message(&s, src, 2, 64 * MIB).await;
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
                (sim.now() - t0).as_secs_f64()
            }
        });
        // 128 MiB through one rx at ~11.6 GiB/s: senders see ~half line rate each
        let agg = gib_per_sec(128 * MIB, secs);
        let line = FabricConfig::default().link_bw.as_gib_per_sec();
        assert!(
            agg > 0.9 * line && agg <= line * 1.01,
            "agg {agg}, line {line}"
        );
    }

    #[test]
    fn disjoint_pairs_scale() {
        let mut sim = Sim::new(1);
        let f = fab(4);
        let secs = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                let t0 = sim.now();
                let futs: Vec<_> = [(0usize, 1usize), (2, 3)]
                    .into_iter()
                    .map(|(a, b)| {
                        let f = Rc::clone(&f);
                        let s = sim.clone();
                        async move {
                            f.message(&s, a, b, 64 * MIB).await;
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
                (sim.now() - t0).as_secs_f64()
            }
        });
        let agg = gib_per_sec(128 * MIB, secs);
        let line = FabricConfig::default().link_bw.as_gib_per_sec();
        assert!(agg > 1.9 * line, "disjoint pairs should double: {agg}");
    }

    #[test]
    fn zero_byte_message_costs_latency() {
        let mut sim = Sim::new(1);
        let f = fab(2);
        let t = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                f.message(&sim, 0, 1, 0).await;
                sim.now()
            }
        });
        let cfg = FabricConfig::default();
        assert!(t.as_ns() >= cfg.wire_latency.as_ns());
        assert!(t.as_ns() < 10_000, "{t}");
    }

    #[test]
    fn loopback_faster_than_wire() {
        let mut sim = Sim::new(1);
        let f = fab(2);
        let (lo, wire) = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                let t0 = sim.now();
                f.message(&sim, 0, 0, 16 * MIB).await;
                let t1 = sim.now();
                f.message(&sim, 0, 1, 16 * MIB).await;
                let t2 = sim.now();
                ((t1 - t0).as_ns(), (t2 - t1).as_ns())
            }
        });
        assert!(lo < wire, "loopback {lo} should beat wire {wire}");
    }

    #[test]
    fn rpc_round_trip_with_bulk() {
        let mut sim = Sim::new(1);
        let got = sim.block_on(|sim| async move {
            let f = fab(2);
            let ep: Rc<Endpoint<u32, u32>> = Endpoint::bind(Rc::clone(&f), 1);
            let server = {
                let ep = Rc::clone(&ep);
                sim.spawn(async move {
                    while let Some(inc) = ep.serve().await {
                        let v = inc.req * 2;
                        inc.respond(v, 1024);
                    }
                })
            };
            let r = ep.call(&sim, 0, 21, 4096).await.unwrap();
            ep.close();
            server.await;
            r
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn partition_times_out_deadline_calls_and_heals() {
        let mut sim = Sim::new(1);
        let (before, healed, elapsed_us) = sim.block_on(|sim| async move {
            let f = fab(2);
            let ep: Rc<Endpoint<u32, u32>> = Endpoint::bind(Rc::clone(&f), 1);
            let server = {
                let ep = Rc::clone(&ep);
                sim.spawn(async move {
                    while let Some(inc) = ep.serve().await {
                        let v = inc.req + 1;
                        inc.respond(v, 0);
                    }
                })
            };
            f.partition_between(0, 1);
            let t0 = sim.now();
            let before = ep
                .call_deadline(&sim, 0, 7, 0, SimDuration::from_us(50))
                .await;
            let waited = (sim.now() - t0).as_ns() / 1_000;
            f.heal_all();
            let healed = ep
                .call_deadline(&sim, 0, 7, 0, SimDuration::from_us(50))
                .await;
            ep.close();
            server.await;
            (before, healed, waited)
        });
        assert_eq!(before, Err(CallError::Timeout));
        assert_eq!(elapsed_us, 50, "timeout must burn the full deadline");
        assert_eq!(healed, Ok(8));
    }

    #[test]
    fn dark_node_rejects_and_restores() {
        let mut sim = Sim::new(1);
        let (dark, lit) = sim.block_on(|sim| async move {
            let f = fab(2);
            let ep: Rc<Endpoint<u32, u32>> = Endpoint::bind(Rc::clone(&f), 1);
            let server = {
                let ep = Rc::clone(&ep);
                sim.spawn(async move {
                    while let Some(inc) = ep.serve().await {
                        let v = inc.req;
                        inc.respond(v, 0);
                    }
                })
            };
            f.set_node_down(1);
            assert!(!f.deliverable(0, 1));
            let dark = ep.call(&sim, 0, 9, 0).await;
            f.set_node_up(1);
            assert!(f.deliverable(0, 1));
            let lit = ep.call(&sim, 0, 9, 0).await;
            ep.close();
            server.await;
            (dark, lit)
        });
        assert!(dark.is_err(), "call into a dark node must fast-fail");
        assert_eq!(lit, Ok(9));
    }

    #[test]
    fn full_loss_rate_times_out_and_offline_endpoint_rejects() {
        let mut sim = Sim::new(1);
        sim.block_on(|sim| async move {
            let f = fab(2);
            let ep: Rc<Endpoint<u32, u32>> = Endpoint::bind(Rc::clone(&f), 1);
            let server = {
                let ep = Rc::clone(&ep);
                sim.spawn(async move {
                    while let Some(inc) = ep.serve().await {
                        let v = inc.req;
                        inc.respond(v, 0);
                    }
                })
            };
            f.set_drop_rate(1_000_000, 0xD20);
            let lossy = ep
                .call_deadline(&sim, 0, 1, 0, SimDuration::from_us(20))
                .await;
            assert_eq!(lossy, Err(CallError::Timeout));
            f.heal_all();
            ep.set_online(false);
            let offline = ep
                .call_deadline(&sim, 0, 1, 0, SimDuration::from_us(20))
                .await;
            assert_eq!(offline, Err(CallError::Timeout));
            ep.set_online(true);
            let back = ep
                .call_deadline(&sim, 0, 1, 0, SimDuration::from_us(200))
                .await;
            assert_eq!(back, Ok(1));
            ep.close();
            server.await;
        });
    }

    #[test]
    fn latency_spike_slows_messages() {
        let mut sim = Sim::new(1);
        let (base, spiked) = sim.block_on(|sim| async move {
            let f = fab(2);
            let t0 = sim.now();
            f.message(&sim, 0, 1, 0).await;
            let base = (sim.now() - t0).as_ns();
            f.set_extra_latency(SimDuration::from_us(500));
            let t1 = sim.now();
            f.message(&sim, 0, 1, 0).await;
            let spiked = (sim.now() - t1).as_ns();
            f.set_extra_latency(SimDuration::ZERO);
            (base, spiked)
        });
        assert!(
            spiked >= base + 500_000,
            "spike not applied: {base} vs {spiked}"
        );
    }

    #[test]
    fn rpc_server_drop_yields_closed() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(|sim| async move {
            let f = fab(2);
            let ep: Rc<Endpoint<u32, u32>> = Endpoint::bind(Rc::clone(&f), 1);
            // server takes the request then drops it without responding
            let ep2 = Rc::clone(&ep);
            sim.spawn(async move {
                let inc = ep2.serve().await.unwrap();
                drop(inc);
            });
            ep.call(&sim, 0, 1, 0).await
        });
        assert!(r.is_err());
    }
}
