// Clean: every unsafe block carries its own adjacent SAFETY comment.

fn documented(p: *const u8) -> (u8, u8) {
    // SAFETY: caller guarantees `p` points to a live, initialized byte.
    let a = unsafe { *p };
    // SAFETY: same contract as above; each block gets its own comment.
    // A continuation line under the SAFETY line is part of the paragraph.
    let b = unsafe { *p };
    (a, b)
}

fn trailing(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: trailing justification on the same line
}

/* SAFETY: block-comment justification works too. */
unsafe fn marked() {}
