// Clean: both wall-clock reads are documented at the use site.

fn provenance() -> f64 {
    // simlint: allow(D02) wall-time stamp for report provenance, never sim-visible
    let t0 = std::time::Instant::now();
    let t1 = std::time::Instant::now(); // simlint: allow(D02) trailing form of the same waiver
    (t1 - t0).as_secs_f64()
}
