// Clean A01: scoped, dropped, extracted, and task-isolated guards.

async fn scoped(cell: &RefCell<u64>, sim: &Sim) {
    {
        let mut g = cell.borrow_mut();
        *g += 1;
    }
    sim.sleep(SimDuration::from_us(1)).await;
}

async fn dropped(cell: &RefCell<u64>, sim: &Sim) {
    let g = cell.borrow();
    let snapshot = *g;
    drop(g);
    sim.sleep(SimDuration::from_ns(snapshot)).await;
}

async fn extracted(cell: &RefCell<Vec<u64>>, sim: &Sim) {
    let first = cell.borrow().first().cloned();
    sim.sleep(SimDuration::from_us(1)).await;
    let _ = first;
}

fn spawn_isolated(cell: &RefCell<u64>, sim: &Sim) {
    let g = cell.borrow_mut();
    sim.spawn(async move {
        step().await;
    });
    drop(g);
}
