// Planted D00 violations: pragma hygiene. A pragma that cannot be
// trusted is itself a defect — waivers must not rot.

fn pragmas() {
    // simlint: allow(D02)
    let _t = std::time::Instant::now();
    // simlint: allow(D99) unknown rule id
    let _x = 1;
    // simlint: allow(D03) stale: nothing random on the next line
    let _y = 2;
}
