// Planted D05 violations: unsafe without a per-block SAFETY comment.

fn deref_no_comment(p: *const u8) -> u8 {
    unsafe { *p }
}

fn shared_paragraph(p: *const u8) -> (u8, u8) {
    // SAFETY: one paragraph trying to cover both blocks below — only the
    // first block may claim it; the second is a violation.
    let a = unsafe { *p };
    let b = unsafe { *p };
    (a, b)
}
