// Planted D01 violations: std hash collections in simulator code.
// Also the CI negative smoke check: simlint run on this file must exit 1.
use std::collections::HashMap;
use std::collections::HashSet;

fn order_dependent() -> Vec<u32> {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    let s: HashSet<u32> = HashSet::new();
    m.keys().chain(s.iter()).copied().collect() // nondeterministic order
}
