// No violations: every rule keyword here is hidden from the compiler —
// a naive grep flags this file, a lexer must not.

fn clean() -> usize {
    let a = "HashMap in a plain string";
    let b = "escaped quote \" then HashMap, still inside the string";
    let c = r#"HashMap in a raw string with "quotes" inside"#;
    let d = br##"HashSet in a raw byte string with a "# fence"##;
    // HashMap in a line comment
    /* HashSet in a /* nested */ block comment */
    struct MyHashMap; // identifier *containing* the name is fine
    let _ = MyHashMap;
    a.len() + b.len() + c.len() + d.len()
}
