// Planted A01 violations: guards live across .await.

async fn held_across(cell: &RefCell<u64>, sim: &Sim) {
    let total = cell.borrow_mut();
    sim.sleep(SimDuration::from_us(1)).await;
    drop(total);
}

async fn lock_in_cond(m: &Mutex<u64>, sim: &Sim) {
    if let Ok(g) = m.lock() {
        sim.sleep(SimDuration::from_us(1)).await;
        let _ = g;
    }
}
