// Planted U01 violations: raw casts crossing unit families.

fn wire_time(bytes: u64, bw: f64) -> u64 {
    (bytes as f64 * 1e9 / bw) as u64
}

fn offered_rate(bytes: u64, elapsed_ns: u64) -> f64 {
    bytes as f64 / (elapsed_ns as f64 / 1e9)
}
