// Clean C01: iteration paired with charges, sync helpers, tests exempt.

async fn verified_read(&self, sim: &Sim) -> u64 {
    self.media.read_payload(sim, self.len).await;
    csum64_bytes(SEED, &self.payload)
}

pub fn sync_helper(p: &[u8]) -> usize {
    p.chunks_exact(8).count()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hashes_in_tests() {
        let _ = csum64_bytes(0, &[1, 2, 3]);
    }
}
