// Clean: a gauntlet of lexer edge cases. Every banned name below is in
// a position the compiler never sees as code.

fn torture<'a>(x: &'a str) -> &'a str {
    let _c: char = 'H'; // char literal, not a lifetime
    let _q: char = '\''; // escaped quote char
    let _bs: char = '\\';
    let _byte = b'u'; // byte char
    let _n = 0xFA17u64 + 1_000; // numeric suffixes are not identifiers
    let _s1 = "thread_rng() and Instant::now() in a string";
    let _s2 = r#"crossbeam::scope and "SystemTime" in a raw string"#;
    let _s3 = br##"HashMap behind a double-# fence: "# still inside"##;
    let _s4 = c"thread_rng in a C string";
    // thread_rng() in a line comment
    /* rand::random::<u64>() in a block comment
       /* nested: std::thread::spawn(|| HashSet::new()) */
       still inside the outer comment: from_entropy() */
    let multi = "a string
        spanning lines with Instant::now() inside";
    let _ = multi;
    x
}
