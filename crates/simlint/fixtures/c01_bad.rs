// Planted C01 violations: payload iteration without charging media time.

async fn hash_only(&self, sim: &Sim) -> u64 {
    csum64_bytes(SEED, &self.payload)
}

async fn peek(&self) -> Vec<u8> {
    self.value.materialize()
}
