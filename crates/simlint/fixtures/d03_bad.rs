// Planted D03 violations: ambient randomness (seed not derived from Sim).

fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let a: u64 = rand::random();
    let rng2 = rand_chacha::ChaCha8Rng::from_entropy();
    let _ = (&mut rng, rng2);
    a
}
