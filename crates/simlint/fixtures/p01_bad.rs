// Planted P01 violations: panics on simulation-visible paths.

fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn second(x: Option<u32>) -> u32 {
    x.expect("always set")
}

fn third(kind: u8) -> u32 {
    match kind {
        0 => 0,
        1 => panic!("bad kind"),
        _ => unreachable!(),
    }
}

fn shared_audit(a: Option<u32>, b: Option<u32>) -> u32 {
    // INVARIANT: both checked by the caller
    let x = a.unwrap();
    let y = b.unwrap();
    x + y
}
