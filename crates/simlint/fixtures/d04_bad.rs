// Planted D04 violations: host threads outside crates/bench.

fn host_parallelism() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    let r = crossbeam::scope(|s| {
        s.spawn(|_| ());
    });
    let _ = r;
}
