// Planted D02 violations: wall-clock reads in simulator code.

fn wall_clock() -> (std::time::Instant, std::time::SystemTime) {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    (t, s)
}
