// Clean U01: single-family casts and typed conversions.

fn widen(count: usize) -> u64 {
    count as u64
}

fn mean(vals: &[f64]) -> f64 {
    vals.iter().sum::<f64>() / vals.len() as f64
}

fn typed(bw: Bandwidth, payload: Bytes) -> Nanos {
    bw.ns_for_bytes(payload)
}
