// Clean P01: audited invariants, test-only panics, lookalike idents.

fn audited(x: Option<u32>) -> u32 {
    // INVARIANT: caller guarantees Some (checked at dispatch)
    x.unwrap()
}

fn same_line(y: Option<u32>) -> u32 {
    y.expect("set above") // INVARIANT: y assigned by the dispatcher
}

fn lookalikes(x: Option<u32>) -> u32 {
    x.unwrap_or(7)
}

fn unwrap() -> u32 {
    3
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_panic_freely() {
        let x: Option<u32> = Some(1);
        x.unwrap();
        panic!("tests may panic");
    }
}
