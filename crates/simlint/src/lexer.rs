//! A minimal hand-rolled Rust lexer — just enough structure to tell
//! *code* apart from *non-code*.
//!
//! The rule engine needs four facts about a source file:
//!
//! 1. the stream of identifier / `::` tokens that the compiler would see
//!    as code (so `"HashMap"` in a string literal or `// HashMap` in a
//!    comment can never trip a rule);
//! 2. the *structural* punctuation — braces, brackets, parens, `.`,
//!    `;`, `#`, `!` and friends — that the [`crate::structure`] tracker
//!    uses to recover fn boundaries, block spans and `.await` points;
//! 3. the comments, with their spans, so pragmas, `SAFETY:` and
//!    `INVARIANT:` justifications can be located;
//! 4. which lines carry any code at all, so a standalone pragma comment
//!    can be attached to "the next code line".
//!
//! Everything else (numbers, the remaining punctuation) is consumed and
//! discarded. The tricky parts are the ones that hide rule keywords
//! from naive `grep`: string literals with escapes, raw strings with
//! arbitrary `#` fences (`r#"…"#`), byte/C-string prefixes, nested block
//! comments, and `'a` lifetimes vs `'a'` char literals. Line endings
//! are normalised: `\r\n` sources lex to the same tokens, lines and
//! comment *text* as their `\n` twins, and a file whose last line lacks
//! a trailing newline anchors that line exactly like any other.

use std::collections::BTreeSet;

/// One code token the rule engine matches against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based byte column of the token's first character.
    pub col: u32,
}

/// The structural punctuation bytes [`lex`] emits as [`TokKind::Punct`].
/// Everything else non-alphanumeric is consumed and discarded.
pub const STRUCT_PUNCT: &[u8] = b"{}()[]#.;=,!&<>";

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `thread_rng`, `unsafe`, …).
    Ident(String),
    /// The `::` path separator.
    PathSep,
    /// One structural punctuation byte from [`STRUCT_PUNCT`].
    Punct(u8),
}

impl TokKind {
    /// Is this token the given punctuation byte?
    #[inline]
    pub fn is_punct(&self, b: u8) -> bool {
        matches!(self, TokKind::Punct(p) if *p == b)
    }
    /// Is this token the given identifier?
    #[inline]
    pub fn is_ident(&self, id: &str) -> bool {
        matches!(self, TokKind::Ident(s) if s == id)
    }
}

/// One comment (line or block), with the line it *starts* on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` delimiters.
    pub text: String,
    /// 1-based start line.
    pub line: u32,
}

/// Lexer output: tokens, comments, and per-line occupancy facts.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Lines containing at least one non-comment, non-whitespace byte
    /// (string literals and punctuation count as code here).
    pub code_lines: BTreeSet<u32>,
    /// Every line spanned by a comment (all lines of a block comment).
    pub comment_lines: BTreeSet<u32>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does a raw/byte/C string literal start at `i`? Returns the index of
/// its opening quote's *fence*: `(hashes, quote_index, is_raw)`.
///
/// Handles `r"`, `r#"`, `b"`, `br#"`, `c"`, `cr##"`, `b'` (byte char).
fn string_prefix(src: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    let rest = &src[i..];
    let prefix_len = match rest {
        [b'b', b'r', ..] | [b'c', b'r', ..] => 2,
        [b'r', ..] | [b'b', ..] | [b'c', ..] => 1,
        _ => return None,
    };
    let raw = rest[prefix_len - 1] == b'r';
    let mut j = prefix_len;
    if raw {
        let mut hashes = 0;
        while j < rest.len() && rest[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < rest.len() && rest[j] == b'"' {
            return Some((hashes, i + j, true));
        }
        return None;
    }
    if j < rest.len() && (rest[j] == b'"' || (rest[j] == b'\'' && rest[0] == b'b')) {
        return Some((0, i + j, false));
    }
    None
}

/// Lex `src` into tokens + comments + line facts. Never fails: malformed
/// input (unterminated literal, stray byte) degrades to "skip to EOF",
/// which is safe for a linter — rustc will reject the file anyway.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        // ---- whitespace -------------------------------------------------
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // ---- comments ---------------------------------------------------
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start_line = line;
            let start = i + 2;
            while i < b.len() && b[i] != b'\n' {
                bump!();
            }
            // CRLF sources leave a `\r` before the `\n`; strip it so the
            // comment *text* (pragmas, SAFETY:/INVARIANT: audits) is
            // byte-identical to the `\n`-only twin of the file.
            let text = src[start..i].strip_suffix('\r').unwrap_or(&src[start..i]);
            out.comments.push(Comment {
                text: text.to_string(),
                line: start_line,
            });
            out.comment_lines.insert(start_line);
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start_line = line;
            let start = i + 2;
            bump!();
            bump!();
            let mut depth = 1usize;
            let mut end = b.len();
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            let end = end.min(b.len());
            // Normalise interior CRLF so multi-line comment text matching
            // (e.g. `SAFETY:` heads) is line-ending agnostic.
            let mut text = src[start..end].to_string();
            if text.contains('\r') {
                text = text.replace("\r\n", "\n");
            }
            out.comments.push(Comment {
                text,
                line: start_line,
            });
            for l in start_line..=line {
                out.comment_lines.insert(l);
            }
            continue;
        }
        // From here on, everything is code as far as line occupancy goes.
        out.code_lines.insert(line);
        // ---- raw / byte / C strings (prefix before ident lexing!) -------
        if let Some((hashes, quote, raw)) = string_prefix(b, i) {
            while i <= quote {
                bump!();
            }
            if raw {
                // scan for `"` followed by `hashes` `#`s
                'raw: while i < b.len() {
                    if b[i] == b'"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                bump!();
                            }
                            break 'raw;
                        }
                    }
                    bump!();
                }
            } else {
                let close = b[quote]; // `"` or `'` (byte char)
                while i < b.len() {
                    if b[i] == b'\\' {
                        bump!();
                        if i < b.len() {
                            bump!();
                        }
                        continue;
                    }
                    if b[i] == close {
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            continue;
        }
        // ---- plain strings ----------------------------------------------
        if c == b'"' {
            bump!();
            while i < b.len() {
                if b[i] == b'\\' {
                    bump!();
                    if i < b.len() {
                        bump!();
                    }
                    continue;
                }
                if b[i] == b'"' {
                    bump!();
                    break;
                }
                bump!();
            }
            continue;
        }
        // ---- char literal vs lifetime -----------------------------------
        if c == b'\'' {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                // escaped char literal: consume to the closing quote
                bump!();
                bump!();
                while i < b.len() {
                    if b[i] == b'\\' {
                        bump!();
                        if i < b.len() {
                            bump!();
                        }
                        continue;
                    }
                    if b[i] == b'\'' {
                        bump!();
                        break;
                    }
                    bump!();
                }
                continue;
            }
            // `'x'` (possibly multibyte x) is a char literal; `'a` with no
            // closing quote within one character is a lifetime/label.
            let mut j = i + 1;
            let mut seen = 0;
            while j < b.len() && seen < 4 {
                if b[j] == b'\'' && j > i + 1 {
                    break;
                }
                // count a char per non-continuation byte
                if b[j] & 0xC0 != 0x80 {
                    seen += 1;
                }
                if seen > 1 {
                    j = usize::MAX;
                    break;
                }
                j += 1;
            }
            if j != usize::MAX && j < b.len() && b[j] == b'\'' {
                while i <= j {
                    bump!();
                }
            } else {
                bump!(); // lifetime: skip the quote, lex `a` as an ident
            }
            continue;
        }
        // ---- identifiers / keywords -------------------------------------
        if is_ident_start(c) {
            let (l, cl) = (line, col);
            let start = i;
            while i < b.len() && is_ident_cont(b[i]) {
                bump!();
            }
            out.tokens.push(Token {
                kind: TokKind::Ident(src[start..i].to_string()),
                line: l,
                col: cl,
            });
            continue;
        }
        // ---- numbers (consume suffixes so `0xFA17` yields no ident) -----
        if c.is_ascii_digit() {
            while i < b.len() && is_ident_cont(b[i]) {
                bump!();
            }
            continue;
        }
        // ---- `::` --------------------------------------------------------
        if c == b':' && i + 1 < b.len() && b[i + 1] == b':' {
            out.tokens.push(Token {
                kind: TokKind::PathSep,
                line,
                col,
            });
            bump!();
            bump!();
            continue;
        }
        // ---- structural punctuation -------------------------------------
        if STRUCT_PUNCT.contains(&c) {
            out.tokens.push(Token {
                kind: TokKind::Punct(c),
                line,
                col,
            });
            bump!();
            continue;
        }
        // ---- anything else: ignorable punctuation -----------------------
        bump!();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            let b = r#"HashMap in a raw string "quoted" inside"#;
            let c = b"HashMap bytes";
            let d = "escaped quote \" HashMap still inside";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"), "leaked: {ids:?}");
        assert!(ids.iter().any(|s| s == "let"));
    }

    #[test]
    fn code_after_tricky_literals_is_seen() {
        let src = r##"let s = r#"x"#; thread_rng();"##;
        assert!(idents(src).iter().any(|s| s == "thread_rng"));
        let src = "let c = '\\''; thread_rng();";
        assert!(idents(src).iter().any(|s| s == "thread_rng"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        // the lifetime name is lexed as an ident and the rest survives
        assert!(ids.iter().any(|s| s == "str"));
        assert!(ids.iter().any(|s| s == "a"));
        // but a real char literal swallows its payload
        assert!(!idents("let c = 'q';").iter().any(|s| s == "q"));
        assert!(!idents("let c = b'q';").iter().any(|s| s == "q"));
    }

    #[test]
    fn path_sep_is_tokenized() {
        let toks = lex("std::thread::spawn").tokens;
        let kinds: Vec<_> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(kinds.len(), 5);
        assert_eq!(*kinds[1], TokKind::PathSep);
        assert_eq!(*kinds[3], TokKind::PathSep);
    }

    #[test]
    fn numeric_suffixes_do_not_create_identifiers() {
        let ids = idents("let x = 0xFA17u64 + 1e5f64;");
        assert!(!ids.iter().any(|s| s == "xFA17u64" || s == "u64"));
    }

    #[test]
    fn lines_and_comments_are_tracked() {
        let src = "let a = 1;\n// SAFETY: fine\nlet b = 2; // trailing\n/* multi\nline */\n";
        let lx = lex(src);
        assert!(lx.code_lines.contains(&1));
        assert!(!lx.code_lines.contains(&2));
        assert!(lx.code_lines.contains(&3));
        assert!(lx.comment_lines.contains(&2));
        assert!(lx.comment_lines.contains(&3)); // trailing comment
        assert!(lx.comment_lines.contains(&4) && lx.comment_lines.contains(&5));
        assert_eq!(lx.comments.len(), 3);
        assert_eq!(lx.comments[0].text.trim(), "SAFETY: fine");
    }

    #[test]
    fn block_comment_spanning_lines_keeps_line_numbers() {
        let src = "/* a\nb\nc */ thread_rng();";
        let lx = lex(src);
        let t = &lx.tokens[0];
        assert_eq!(t.line, 3);
        assert!(matches!(&t.kind, TokKind::Ident(s) if s == "thread_rng"));
    }

    #[test]
    fn structural_punctuation_is_tokenized() {
        let toks = lex("fn f() { x.await; g!() }").tokens;
        let puncts: Vec<u8> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts,
            vec![b'(', b')', b'{', b'.', b';', b'!', b'(', b')', b'}']
        );
    }

    #[test]
    fn crlf_sources_lex_identically_to_lf_twins() {
        let lf = "fn f() {\n    // simlint: allow(D02) why\n    let t = now();\n}\n\
                  /* SAFETY: multi\nline head */\nlet s = r\"keep\";\nlet c = 'q';\n";
        let crlf = lf.replace('\n', "\r\n");
        let a = lex(lf);
        let b = lex(&crlf);
        assert_eq!(a.tokens, b.tokens, "token stream differs under CRLF");
        assert_eq!(
            a.comments, b.comments,
            "comment text/lines differ under CRLF"
        );
        assert_eq!(a.code_lines, b.code_lines);
        assert_eq!(a.comment_lines, b.comment_lines);
    }

    #[test]
    fn crlf_raw_string_interior_is_preserved() {
        // A raw string's *contents* must not be rewritten — only comment
        // text is normalised.
        let lx = lex("let s = r\"a\r\nb\"; now();");
        assert!(lx.tokens.iter().any(|t| t.kind.is_ident("now")));
        assert_eq!(lx.tokens.last().unwrap().line, 2);
    }

    #[test]
    fn last_line_pragma_without_trailing_newline_is_anchored() {
        // trailing pragma at EOF, LF file with no final newline
        let lx = lex("fn f() {}\nlet x = 1; // simlint: allow(D02) tail");
        let c = lx.comments.last().unwrap();
        assert_eq!(c.line, 2);
        assert_eq!(c.text.trim(), "simlint: allow(D02) tail");
        assert!(lx.code_lines.contains(&2));
        // same, CRLF file ending in a bare `\r` (no `\n`)
        let lx = lex("fn f() {}\r\nlet x = 1; // simlint: allow(D02) tail\r");
        let c = lx.comments.last().unwrap();
        assert_eq!(c.line, 2);
        assert_eq!(c.text.trim(), "simlint: allow(D02) tail");
    }
}
