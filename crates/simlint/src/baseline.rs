//! Ratchet baseline + machine-readable JSON report.
//!
//! The baseline (`results/simlint_baseline.json`) records, per ratchet
//! rule and per file, how many legacy violations are *excused*. The
//! semantics are a one-way ratchet:
//!
//! * a file may have **at most** its recorded count of violations — the
//!   excused ones are the first N in line order, anything beyond gates
//!   the exit code exactly like a violation in new code;
//! * new files (not in the baseline) gate at zero;
//! * counts only go down: shrinking debt is adopted by regenerating the
//!   baseline with `--update-baseline`, and CI fails on any increase
//!   because the excess is a plain violation.
//!
//! Only [`RATCHET_RULES`] participate; the structural families with no
//! legacy debt (A01, C01) and the determinism rules (D00–D05) always
//! gate at zero.
//!
//! Both the baseline and the report are hand-rolled JSON — simlint has
//! no dependencies, so this module carries a ~60-line parser for the
//! tiny subset it emits (objects, strings, unsigned integers).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{FileReport, Hit};

/// Rules whose legacy debt is carried by the baseline.
pub const RATCHET_RULES: [&str; 2] = ["P01", "U01"];

/// Parsed baseline: rule id → file path → excused violation count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Total excused sites across all rules and files.
    pub fn total(&self) -> u64 {
        self.counts.values().flat_map(|m| m.values()).sum()
    }

    /// Build a baseline from current reports: every ratchet-rule
    /// violation still present becomes excused debt.
    pub fn from_reports(reports: &[FileReport]) -> Baseline {
        let mut b = Baseline::default();
        for fr in reports {
            for h in &fr.violations {
                if RATCHET_RULES.contains(&h.rule) {
                    *b.counts
                        .entry(h.rule.to_string())
                        .or_default()
                        .entry(fr.path.clone())
                        .or_insert(0) += 1;
                }
            }
        }
        b
    }

    /// Serialize. Deterministic (BTreeMap order), diff-friendly.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": 1,\n");
        s.push_str("  \"comment\": \"simlint ratchet: legacy per-file debt; counts may only decrease (regenerate with --update-baseline)\",\n");
        s.push_str("  \"counts\": {");
        let mut first_rule = true;
        for (rule, files) in &self.counts {
            if !first_rule {
                s.push(',');
            }
            first_rule = false;
            let _ = write!(s, "\n    {}: {{", esc(rule));
            let mut first_file = true;
            for (file, n) in files {
                if !first_file {
                    s.push(',');
                }
                first_file = false;
                let _ = write!(s, "\n      {}: {}", esc(file), n);
            }
            s.push_str("\n    }");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Parse a baseline file rendered by [`Baseline::render`] (or
    /// hand-edited downward). Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let top = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        let Json::Obj(top) = top else {
            return Err("baseline: top level must be an object".into());
        };
        let mut out = Baseline::default();
        let Some(Json::Obj(counts)) = top.get("counts") else {
            return Err("baseline: missing \"counts\" object".into());
        };
        for (rule, files) in counts {
            let Json::Obj(files) = files else {
                return Err(format!("baseline: counts[{rule:?}] must be an object"));
            };
            let entry = out.counts.entry(rule.clone()).or_default();
            for (file, n) in files {
                let Json::Num(n) = n else {
                    return Err(format!(
                        "baseline: counts[{rule:?}][{file:?}] must be a number"
                    ));
                };
                entry.insert(file.clone(), *n);
            }
        }
        Ok(out)
    }
}

/// Apply the ratchet: for each file and ratchet rule, move the first
/// `excused` violations (already in line order) to
/// [`FileReport::baseline_excused`]. Anything beyond the allowance
/// stays a violation. Returns the number of excused sites.
pub fn apply(reports: &mut [FileReport], base: &Baseline) -> usize {
    let mut excused_total = 0usize;
    for fr in reports {
        for rule in RATCHET_RULES {
            let allowance = base
                .counts
                .get(rule)
                .and_then(|m| m.get(&fr.path))
                .copied()
                .unwrap_or(0);
            if allowance == 0 {
                continue;
            }
            let mut kept: Vec<Hit> = Vec::with_capacity(fr.violations.len());
            let mut used = 0u64;
            for h in fr.violations.drain(..) {
                if h.rule == rule && used < allowance {
                    used += 1;
                    fr.baseline_excused.push(h);
                } else {
                    kept.push(h);
                }
            }
            fr.violations = kept;
            excused_total += used as usize;
        }
    }
    excused_total
}

// ---------------------------------------------------------------------
// Minimal JSON (subset) parser — objects, strings, unsigned ints
// ---------------------------------------------------------------------

enum Json {
    Obj(BTreeMap<String, Json>),
    Str(#[allow(dead_code)] String),
    Num(u64),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.i += 1;
                    let Some(&e) = self.b.get(self.i) else {
                        return Err("unterminated escape".into());
                    };
                    s.push(match e {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(format!("unsupported escape \\{}", other as char));
                        }
                    });
                    self.i += 1;
                }
                c => {
                    s.push(c as char);
                    self.i += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => {
                self.expect(b'{')?;
                let mut m = BTreeMap::new();
                if self.peek() == Some(b'}') {
                    self.expect(b'}')?;
                    return Ok(Json::Obj(m));
                }
                loop {
                    let k = self.string()?;
                    self.expect(b':')?;
                    let v = self.value()?;
                    m.insert(k, v);
                    match self.peek() {
                        Some(b',') => self.expect(b',')?,
                        Some(b'}') => {
                            self.expect(b'}')?;
                            return Ok(Json::Obj(m));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() => {
                let mut n = 0u64;
                while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((self.b[self.i] - b'0') as u64))
                        .ok_or_else(|| format!("number overflow at byte {}", self.i))?;
                    self.i += 1;
                }
                Ok(Json::Num(n))
            }
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }
}

/// Escape a string for JSON output.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------

fn hit_json(fr: &FileReport, h: &Hit) -> String {
    let mut s = format!(
        "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"what\": {}",
        esc(h.rule),
        esc(&fr.path),
        h.line,
        esc(&h.what)
    );
    if let Some(r) = &h.reason {
        let _ = write!(s, ", \"reason\": {}", esc(r));
    }
    s.push('}');
    s
}

/// One JSON section: name, hit accessor, per_rule counter slot.
type Section = (&'static str, fn(&FileReport) -> &Vec<Hit>, usize);

/// Render the machine-readable report. Deterministic: files are
/// pre-sorted by the walker and hits by (line, col) within each file.
pub fn render_json(reports: &[FileReport], baseline: Option<&Baseline>) -> String {
    let mut per_rule: BTreeMap<&str, [u64; 4]> = BTreeMap::new(); // v, w, s, excused+audited
    let sections: [Section; 4] = [
        ("violations", |fr| &fr.violations, 0),
        ("waived", |fr| &fr.waived, 1),
        ("sanctioned", |fr| &fr.sanctioned, 2),
        ("baseline_excused", |fr| &fr.baseline_excused, 3),
    ];
    for fr in reports {
        for (_, get, slot) in &sections {
            for h in get(fr) {
                per_rule.entry(h.rule).or_default()[*slot] += 1;
            }
        }
        for h in &fr.audited {
            per_rule.entry(h.rule).or_default()[3] += 1;
        }
    }

    let mut s = String::from("{\n  \"schema\": 1,\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", reports.len());
    let _ = writeln!(
        s,
        "  \"baseline_total\": {},",
        baseline.map(|b| b.total()).unwrap_or(0)
    );
    s.push_str("  \"per_rule\": {");
    let mut first = true;
    for (rule, [v, w, sa, ex]) in &per_rule {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            "\n    {}: {{\"violations\": {v}, \"waived\": {w}, \"sanctioned\": {sa}, \"excused_or_audited\": {ex}}}",
            esc(rule)
        );
    }
    s.push_str("\n  }");
    for (name, get, _) in &sections {
        let _ = write!(s, ",\n  {}: [", esc(name));
        let mut first = true;
        for fr in reports {
            for h in get(fr) {
                if !first {
                    s.push(',');
                }
                first = false;
                let _ = write!(s, "\n    {}", hit_json(fr, h));
            }
        }
        s.push_str(if first { "]" } else { "\n  ]" });
    }
    // audited INVARIANT sites get their own section
    let _ = write!(s, ",\n  \"audited\": [");
    let mut first = true;
    for fr in reports {
        for h in &fr.audited {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n    {}", hit_json(fr, h));
        }
    }
    s.push_str(if first { "]" } else { "\n  ]" });
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(rule: &'static str, line: u32) -> Hit {
        Hit {
            rule,
            line,
            col: 1,
            what: "x".into(),
            reason: None,
        }
    }

    #[test]
    fn baseline_round_trips() {
        let mut b = Baseline::default();
        b.counts
            .entry("P01".into())
            .or_default()
            .insert("crates/raft/src/testing.rs".into(), 12);
        b.counts
            .entry("U01".into())
            .or_default()
            .insert("crates/bench/src/lib.rs".into(), 2);
        let text = b.render();
        let back = Baseline::parse(&text).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.total(), 14);
    }

    #[test]
    fn ratchet_excuses_first_n_and_gates_the_rest() {
        let mut fr = FileReport {
            path: "crates/raft/src/testing.rs".into(),
            violations: vec![hit("P01", 3), hit("P01", 9), hit("U01", 5), hit("P01", 20)],
            ..Default::default()
        };
        let mut b = Baseline::default();
        b.counts
            .entry("P01".into())
            .or_default()
            .insert(fr.path.clone(), 2);
        let mut reports = vec![std::mem::take(&mut fr)];
        let excused = apply(&mut reports, &b);
        assert_eq!(excused, 2);
        let fr = &reports[0];
        assert_eq!(fr.baseline_excused.len(), 2);
        assert_eq!(fr.baseline_excused[0].line, 3);
        // the third P01 and the un-ratcheted U01 still gate
        let rules: Vec<_> = fr.violations.iter().map(|h| (h.rule, h.line)).collect();
        assert_eq!(rules, vec![("U01", 5), ("P01", 20)]);
    }

    #[test]
    fn new_files_gate_at_zero() {
        let fr = FileReport {
            path: "crates/sim/src/new.rs".into(),
            violations: vec![hit("P01", 1)],
            ..Default::default()
        };
        let mut reports = vec![fr];
        let excused = apply(&mut reports, &Baseline::default());
        assert_eq!(excused, 0);
        assert_eq!(reports[0].violations.len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[1,2]").is_err());
        assert!(Baseline::parse("{\"counts\": {\"P01\": 3}}").is_err());
        assert!(Baseline::parse("{}").is_err());
    }

    #[test]
    fn json_report_is_valid_enough_to_reparse() {
        let fr = FileReport {
            path: "crates/sim/src/x.rs".into(),
            violations: vec![hit("P01", 1)],
            waived: vec![Hit {
                reason: Some("why \"quoted\"".into()),
                ..hit("D02", 2)
            }],
            ..Default::default()
        };
        let text = render_json(&[fr], None);
        // our own parser only reads objects/strings/ints; just check
        // escaping and section presence
        assert!(text.contains("\"per_rule\""));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"baseline_excused\": ["));
    }
}
