//! # simlint — workspace determinism & unsafe-audit static analysis
//!
//! Every reproduced claim in this repo rests on the simulator being
//! bit-exact for a given seed. That property used to hold *by
//! convention* (BTree collections, seeded ChaCha RNG, virtual time);
//! `simlint` carves the convention in stone. It walks all workspace
//! sources with a hand-rolled lexer ([`lexer`]) — no `syn`, no
//! dependencies — and enforces:
//!
//! | rule | contract |
//! |------|----------|
//! | D01  | no `std` hash collections in simulator code (iteration order is nondeterministic; use the BTree variants) |
//! | D02  | no wall-clock reads (`Instant::now`, `SystemTime`) — simulation time comes from `Sim::now` |
//! | D03  | no ambient randomness (`thread_rng`, `rand::random`, `from_entropy`, `OsRng`) — RNGs derive from the `Sim` seed |
//! | D04  | no host threads (`std::thread`, `crossbeam`, `rayon`) outside `crates/bench`, the sanctioned host-parallelism zone |
//! | D05  | every `unsafe` block carries its own adjacent `// SAFETY:` justification — one comment per block |
//! | D00  | pragma hygiene: every waiver is well-formed, reasoned, and actually waives something |
//!
//! Four *structural* families (see [`families`]) run on top of the
//! [`structure`] index — fn boundaries, block spans, `.await` points:
//!
//! | rule | contract |
//! |------|----------|
//! | P01  | panic-freedom in simulation-visible crates; sites carry an audited `// INVARIANT:` comment or return typed errors |
//! | U01  | no raw numeric cast in a statement mixing bytes/nanoseconds/rate vocabulary — use `sim::units` newtypes |
//! | A01  | no `RefCell` borrow or lock guard live across `.await` |
//! | C01  | async payload iteration in `vos`/`media` must reach the charged cost engine |
//!
//! Legacy P01/U01 debt is carried by a committed ratchet baseline
//! ([`baseline`], `results/simlint_baseline.json`): per-file counts may
//! only decrease, and new code gates at zero.
//!
//! Legitimate exceptions are documented **at the use site** with a
//! pragma and counted in the report:
//!
//! ```text
//! // simlint: allow(D02) wall-time provenance stamp, never sim-visible
//! ```
//!
//! A trailing pragma waives its own line; a standalone pragma comment
//! waives the next line that contains code (intervening comment lines
//! are skipped). A pragma with no reason, an unknown rule id, or nothing
//! to waive is itself a violation (D00), so waivers cannot rot.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod families;
pub mod lexer;
pub mod structure;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use lexer::{lex, Lexed, TokKind};

/// A token pattern element: a literal identifier or the `::` separator.
#[derive(Clone, Copy, Debug)]
pub enum Pat {
    Id(&'static str),
    Sep,
}

/// One determinism rule, matched structurally against the token stream.
pub struct Rule {
    pub id: &'static str,
    pub title: &'static str,
    pub advice: &'static str,
    /// Any consecutive-token match of any pattern is a hit.
    pub patterns: &'static [&'static [Pat]],
    /// Path prefixes (relative to the workspace root, `/`-separated)
    /// where hits are *sanctioned* rather than violations.
    pub exempt: &'static [&'static str],
}

/// The pattern-driven rules (D05 is structural and handled separately).
pub static RULES: [Rule; 4] = [
    Rule {
        id: "D01",
        title: "no std hash collections in simulator code",
        advice: "iteration order is seeded per process; use the BTree variant",
        patterns: &[&[Pat::Id("HashMap")], &[Pat::Id("HashSet")]],
        exempt: &[],
    },
    Rule {
        id: "D02",
        title: "no wall-clock reads",
        advice: "virtual time only: Sim::now; host timing needs a pragma",
        patterns: &[
            &[Pat::Id("Instant"), Pat::Sep, Pat::Id("now")],
            &[Pat::Id("SystemTime")],
        ],
        exempt: &[],
    },
    Rule {
        id: "D03",
        title: "no ambient randomness",
        advice: "derive every RNG from the Sim seed (ChaCha)",
        patterns: &[
            &[Pat::Id("thread_rng")],
            &[Pat::Id("from_entropy")],
            &[Pat::Id("rand"), Pat::Sep, Pat::Id("random")],
            &[Pat::Id("OsRng")],
            &[Pat::Id("getrandom")],
        ],
        exempt: &[],
    },
    Rule {
        id: "D04",
        title: "no host threads outside crates/bench",
        advice: "host parallelism is sanctioned only in the bench harness",
        patterns: &[
            &[Pat::Id("std"), Pat::Sep, Pat::Id("thread")],
            &[Pat::Id("thread"), Pat::Sep, Pat::Id("spawn")],
            &[Pat::Id("crossbeam")],
            &[Pat::Id("rayon")],
        ],
        exempt: &["crates/bench/"],
    },
];

/// Rule ids a pragma may waive.
pub const WAIVABLE: [&str; 9] = [
    "D01", "D02", "D03", "D04", "D05", "P01", "U01", "A01", "C01",
];

const D05_ID: &str = "D05";
const D05_TITLE: &str = "every unsafe block carries its own SAFETY comment";
const D00_ID: &str = "D00";
const D00_TITLE: &str = "pragma hygiene";

/// One rule hit with its location and, for waived hits, the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hit {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    /// What matched (`Instant::now`, `unsafe`, or a pragma-hygiene note).
    pub what: String,
    pub reason: Option<String>,
}

/// Per-file analysis result.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    pub path: String,
    /// Unwaived hits — these gate the exit code.
    pub violations: Vec<Hit>,
    /// Hits documented at the use site with a pragma.
    pub waived: Vec<Hit>,
    /// Hits inside a rule's sanctioned zone (e.g. D04 in `crates/bench`,
    /// U01 in the blessed conversion modules).
    pub sanctioned: Vec<Hit>,
    /// P01 sites carrying an audited `// INVARIANT:` justification;
    /// `reason` holds the invariant text.
    pub audited: Vec<Hit>,
    /// Legacy debt excused by the committed ratchet baseline (filled by
    /// [`baseline::apply`], empty straight out of [`analyze_source`]).
    pub baseline_excused: Vec<Hit>,
}

// ---------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Pragma {
    rules: Vec<String>,
    reason: String,
    line: u32,
    /// Which of `rules` actually waived a hit (stale detection).
    used: Vec<bool>,
}

/// Parse `simlint: allow(D02[,D03]) reason…` out of a comment, if the
/// comment mentions simlint at all. `Err` carries a D00 explanation.
///
/// Doc comments never carry pragmas — they *describe* the pragma syntax
/// (as this one does), they don't waive anything. The lexer strips only
/// the `//`/`/*` delimiters, so a doc comment's text starts with the
/// third delimiter character: `/`, `!` or `*`.
fn parse_pragma(text: &str, line: u32) -> Option<Result<Pragma, String>> {
    if text.starts_with(['/', '!', '*']) {
        return None;
    }
    let at = text.find("simlint:")?;
    let rest = text[at + "simlint:".len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(Err(format!(
            "expected `allow(<rule>)` after `simlint:`, found {rest:?}"
        )));
    };
    let Some(close) = args.find(')') else {
        return Some(Err("unclosed `allow(` in pragma".into()));
    };
    let mut rules = Vec::new();
    for id in args[..close].split(',') {
        let id = id.trim();
        if !WAIVABLE.contains(&id) {
            return Some(Err(format!(
                "unknown rule {id:?} in pragma (waivable: {})",
                WAIVABLE.join(", ")
            )));
        }
        rules.push(id.to_string());
    }
    let reason = args[close + 1..].trim();
    if reason.is_empty() {
        return Some(Err(
            "pragma needs a reason: `simlint: allow(Dnn) <why this is sound>`".into(),
        ));
    }
    let used = vec![false; rules.len()];
    Some(Ok(Pragma {
        rules,
        reason: reason.to_string(),
        line,
        used,
    }))
}

/// The line a pragma waives: its own line if it trails code, otherwise
/// the next line containing code.
fn pragma_target(lx: &Lexed, pragma_line: u32) -> Option<u32> {
    if lx.code_lines.contains(&pragma_line) {
        return Some(pragma_line);
    }
    lx.code_lines.range(pragma_line + 1..).next().copied()
}

// ---------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------

fn pattern_text(p: &[Pat]) -> String {
    let mut s = String::new();
    for el in p {
        match el {
            Pat::Id(id) => s.push_str(id),
            Pat::Sep => s.push_str("::"),
        }
    }
    s
}

fn matches_at(toks: &[lexer::Token], i: usize, pat: &[Pat]) -> bool {
    if i + pat.len() > toks.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, el)| match el {
        Pat::Id(id) => matches!(&toks[i + k].kind, TokKind::Ident(s) if s == id),
        Pat::Sep => toks[i + k].kind == TokKind::PathSep,
    })
}

/// Is this comment a `SAFETY:` justification? Accepts `// SAFETY: …`
/// and block comments whose first non-empty line is `SAFETY: …`
/// (allowing a leading `*`).
fn is_safety_comment(text: &str) -> bool {
    text.lines()
        .map(|l| l.trim().trim_start_matches('*').trim_start())
        .find(|l| !l.is_empty())
        .is_some_and(|l| l.starts_with("SAFETY:"))
}

/// Analyze one file's source. `rel_path` is the workspace-relative,
/// `/`-separated path used for zone exemptions and reporting.
pub fn analyze_source(rel_path: &str, src: &str) -> FileReport {
    let lx = lex(src);
    let mut out = FileReport {
        path: rel_path.to_string(),
        ..Default::default()
    };

    // -- pragmas ------------------------------------------------------
    let mut pragmas: Vec<Pragma> = Vec::new();
    for c in &lx.comments {
        match parse_pragma(&c.text, c.line) {
            None => {}
            Some(Ok(p)) => pragmas.push(p),
            Some(Err(why)) => out.violations.push(Hit {
                rule: D00_ID,
                line: c.line,
                col: 1,
                what: why,
                reason: None,
            }),
        }
    }
    // (target line, rule) -> pragma/rule indices, first pragma wins
    let mut waivers: BTreeMap<(u32, &str), (usize, usize)> = BTreeMap::new();
    for (pi, p) in pragmas.iter().enumerate() {
        let Some(target) = pragma_target(&lx, p.line) else {
            continue; // no code follows: reported stale below
        };
        for (ri, rule) in p.rules.iter().enumerate() {
            let rule: &'static str = WAIVABLE
                .iter()
                .copied()
                .find(|w| *w == rule.as_str())
                .expect("validated in parse_pragma");
            waivers.entry((target, rule)).or_insert((pi, ri));
        }
    }

    // -- route one hit to violations / waived / sanctioned ------------
    let mut route = |pragmas: &mut Vec<Pragma>, mut hit: Hit, sanctioned: bool| {
        if sanctioned {
            out.sanctioned.push(hit);
            return;
        }
        if let Some(&(pi, ri)) = waivers.get(&(hit.line, hit.rule)) {
            pragmas[pi].used[ri] = true;
            hit.reason = Some(pragmas[pi].reason.clone());
            out.waived.push(hit);
            return;
        }
        out.violations.push(hit);
    };

    // -- pattern rules D01–D04 ----------------------------------------
    for rule in &RULES {
        let sanctioned = rule.exempt.iter().any(|p| rel_path.starts_with(p));
        // one hit per (line, pattern): `std::thread::spawn(..)` on one
        // line reports `std::thread` and `thread::spawn` once each
        let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
        for i in 0..lx.tokens.len() {
            for pat in rule.patterns {
                if !matches_at(&lx.tokens, i, pat) {
                    continue;
                }
                let what = pattern_text(pat);
                if seen.insert((lx.tokens[i].line, what.clone())) {
                    route(
                        &mut pragmas,
                        Hit {
                            rule: rule.id,
                            line: lx.tokens[i].line,
                            col: lx.tokens[i].col,
                            what,
                            reason: None,
                        },
                        sanctioned,
                    );
                }
            }
        }
    }

    // -- D05: unsafe audit --------------------------------------------
    let mut safety: BTreeMap<u32, bool> = lx
        .comments
        .iter()
        .filter(|c| is_safety_comment(&c.text))
        .map(|c| (c.line, false))
        .collect();
    for t in &lx.tokens {
        let TokKind::Ident(id) = &t.kind else {
            continue;
        };
        if id != "unsafe" {
            continue;
        }
        let mut justified = false;
        // a SAFETY comment on the same line (leading or trailing)…
        if let Some(claimed) = safety.get_mut(&t.line) {
            if !*claimed {
                *claimed = true;
                justified = true;
            }
        }
        // …or the nearest one in the contiguous comment block above.
        if !justified {
            let mut k = t.line.saturating_sub(1);
            while k > 0 && lx.comment_lines.contains(&k) {
                if let Some(claimed) = safety.get_mut(&k) {
                    if !*claimed {
                        *claimed = true;
                        justified = true;
                    }
                    break; // claimed or not, this block's SAFETY is spoken for
                }
                k -= 1;
            }
        }
        if !justified {
            route(
                &mut pragmas,
                Hit {
                    rule: D05_ID,
                    line: t.line,
                    col: t.col,
                    what: "unsafe".into(),
                    reason: None,
                },
                false,
            );
        }
    }

    // -- structural families P01 / U01 / A01 / C01 --------------------
    let st = structure::build(&lx);
    for fh in families::check(rel_path, &lx, &st) {
        let hit = Hit {
            rule: fh.rule,
            line: fh.line,
            col: fh.col,
            what: fh.what,
            reason: fh.audited.clone(),
        };
        if fh.audited.is_some() {
            out.audited.push(hit);
        } else {
            route(&mut pragmas, hit, fh.sanctioned);
        }
    }

    // -- D00: stale pragmas -------------------------------------------
    for p in &pragmas {
        for (ri, used) in p.used.iter().enumerate() {
            if !used {
                out.violations.push(Hit {
                    rule: D00_ID,
                    line: p.line,
                    col: 1,
                    what: format!(
                        "stale pragma: allow({}) waives nothing on its target line",
                        p.rules[ri]
                    ),
                    reason: None,
                });
            }
        }
    }

    out.violations.sort_by_key(|h| (h.line, h.col));
    out
}

// ---------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------

/// Directory names never descended into during the default walk.
/// `fixtures` holds simlint's own planted-violation corpus; `vendor`
/// holds offline stand-ins for external crates (not workspace sources).
pub const SKIP_DIRS: [&str; 6] = [
    "target",
    "vendor",
    "fixtures",
    ".git",
    "results",
    "baselines",
];

/// Find the workspace root: the nearest ancestor (of
/// `$CARGO_MANIFEST_DIR`, else the current directory) whose
/// `Cargo.toml` declares `[workspace]`.
pub fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
        }
        dir = dir.parent()?;
    }
}

fn walk(dir: &Path, files: &mut BTreeSet<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, files);
            }
        } else if name.ends_with(".rs") {
            files.insert(path);
        }
    }
}

/// The default scan set: every `.rs` under `crates/`, `tests/` and
/// `examples/`, minus [`SKIP_DIRS`]. Sorted, so the report — like
/// everything else around here — is deterministic.
pub fn default_files(root: &Path) -> Vec<PathBuf> {
    let mut files = BTreeSet::new();
    for sub in ["crates", "tests", "examples"] {
        walk(&root.join(sub), &mut files);
    }
    files.into_iter().collect()
}

/// Collect `.rs` files from explicit path arguments (files are taken
/// as-is — even inside `fixtures/` — directories are walked).
pub fn collect_paths(paths: &[PathBuf]) -> Vec<PathBuf> {
    let mut files = BTreeSet::new();
    for p in paths {
        if p.is_dir() {
            walk(p, &mut files);
        } else {
            files.insert(p.clone());
        }
    }
    files.into_iter().collect()
}

/// Analyze files, reporting paths relative to `root` where possible.
pub fn analyze_files(root: &Path, files: &[PathBuf]) -> Vec<FileReport> {
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(path) {
            Ok(src) => out.push(analyze_source(&rel, &src)),
            Err(e) => out.push(FileReport {
                path: rel.clone(),
                violations: vec![Hit {
                    rule: D00_ID,
                    line: 0,
                    col: 0,
                    what: format!("unreadable source file: {e}"),
                    reason: None,
                }],
                ..Default::default()
            }),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

fn rule_heading(id: &str) -> String {
    for r in &RULES {
        if r.id == id {
            return format!("{} — {} ({})", r.id, r.title, r.advice);
        }
    }
    match id {
        D05_ID => format!("{D05_ID} — {D05_TITLE}"),
        D00_ID => format!("{D00_ID} — {D00_TITLE}"),
        families::P01_ID => format!("{} — {}", families::P01_ID, families::P01_TITLE),
        families::U01_ID => format!("{} — {}", families::U01_ID, families::U01_TITLE),
        families::A01_ID => format!("{} — {}", families::A01_ID, families::A01_TITLE),
        families::C01_ID => format!("{} — {}", families::C01_ID, families::C01_TITLE),
        other => other.to_string(),
    }
}

/// Render the per-rule report. Returns `(text, violation_count)`.
pub fn render_report(reports: &[FileReport]) -> (String, usize) {
    let mut by_rule: BTreeMap<&str, Vec<(&FileReport, &Hit)>> = BTreeMap::new();
    let mut waived: Vec<(&FileReport, &Hit)> = Vec::new();
    let mut sanctioned: Vec<(&FileReport, &Hit)> = Vec::new();
    let mut violations = 0usize;
    let mut audited = 0usize;
    let mut excused = 0usize;
    for fr in reports {
        for h in &fr.violations {
            by_rule.entry(h.rule).or_default().push((fr, h));
            violations += 1;
        }
        waived.extend(fr.waived.iter().map(|h| (fr, h)));
        sanctioned.extend(fr.sanctioned.iter().map(|h| (fr, h)));
        audited += fr.audited.len();
        excused += fr.baseline_excused.len();
    }

    let mut s = String::new();
    let _ = writeln!(s, "simlint: {} file(s) scanned", reports.len());
    for (rule, hits) in &by_rule {
        let _ = writeln!(s, "\n{}", rule_heading(rule));
        for (fr, h) in hits {
            let _ = writeln!(s, "  {}:{}:{}  {}", fr.path, h.line, h.col, h.what);
        }
    }
    if !waived.is_empty() {
        let _ = writeln!(s, "\nwaived at the use site ({}):", waived.len());
        for (fr, h) in &waived {
            let _ = writeln!(
                s,
                "  {} {}:{}  {} — {}",
                h.rule,
                fr.path,
                h.line,
                h.what,
                h.reason.as_deref().unwrap_or("")
            );
        }
    }
    if !sanctioned.is_empty() {
        let _ = writeln!(
            s,
            "\nsanctioned-zone hits ({}, rule carve-outs):",
            sanctioned.len()
        );
        for (fr, h) in &sanctioned {
            let _ = writeln!(s, "  {} {}:{}  {}", h.rule, fr.path, h.line, h.what);
        }
    }
    let _ = writeln!(
        s,
        "\nsummary: {} violation(s), {} waived, {} sanctioned, {} audited INVARIANT, {} baseline-excused",
        violations,
        waived.len(),
        sanctioned.len(),
        audited,
        excused,
    );
    (s, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<(String, u32)> {
        analyze_source("crates/sim/src/x.rs", src)
            .violations
            .iter()
            .map(|h| (h.rule.to_string(), h.line))
            .collect()
    }

    #[test]
    fn clean_source_has_no_hits() {
        let fr = analyze_source(
            "crates/sim/src/x.rs",
            "use std::collections::BTreeMap;\nfn f() { let _m: BTreeMap<u32, u32> = BTreeMap::new(); }\n",
        );
        assert!(fr.violations.is_empty() && fr.waived.is_empty() && fr.sanctioned.is_empty());
    }

    #[test]
    fn d01_fires_on_code_not_strings() {
        let src = "use std::collections::{HashMap, HashSet};\nfn f() { let s = \"HashMap\"; }\n";
        let v = violations(src);
        assert_eq!(v, vec![("D01".into(), 1), ("D01".into(), 1)]);
    }

    #[test]
    fn d02_matches_now_call_not_type_mention() {
        assert!(violations("use std::time::Instant;\n").is_empty());
        assert_eq!(
            violations("fn f() { let _t = std::time::Instant::now(); }"),
            vec![("D02".into(), 1)]
        );
    }

    #[test]
    fn d04_is_sanctioned_inside_bench() {
        let src = "fn f() { crossbeam::scope(|_| {}); }";
        let fr = analyze_source("crates/bench/src/lib.rs", src);
        assert!(fr.violations.is_empty());
        assert_eq!(fr.sanctioned.len(), 1);
        let fr = analyze_source("crates/vos/src/lib.rs", src);
        assert_eq!(fr.violations.len(), 1);
    }

    #[test]
    fn trailing_and_standalone_pragmas_waive() {
        let src = "\
fn f() {
    let _a = std::time::Instant::now(); // simlint: allow(D02) trailing waiver
    // simlint: allow(D02) standalone waiver
    // (comment lines between pragma and code are fine)
    let _b = std::time::Instant::now();
}
";
        let fr = analyze_source("crates/sim/src/x.rs", src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        assert_eq!(fr.waived.len(), 2);
        assert_eq!(fr.waived[0].reason.as_deref(), Some("trailing waiver"));
    }

    #[test]
    fn pragma_without_reason_or_with_unknown_rule_is_d00() {
        let v = violations("// simlint: allow(D02)\nfn f() {}\n");
        assert_eq!(v[0].0, "D00");
        let v = violations("// simlint: allow(D99) because\nfn f() {}\n");
        assert_eq!(v[0].0, "D00");
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let src = "//! example syntax: `simlint: allow(D02) reason`\n/// simlint: allow(D03) docs describe, they do not waive\nfn f() {}\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn stale_pragma_is_d00() {
        let v = violations("// simlint: allow(D03) nothing random here\nfn f() {}\n");
        assert_eq!(v, vec![("D00".into(), 1)]);
    }

    #[test]
    fn d05_requires_one_safety_comment_per_block() {
        let with = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(violations(with).is_empty());
        let without = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(violations(without), vec![("D05".into(), 2)]);
        // one shared paragraph over two blocks: the second is unjustified
        let shared = "\
fn f(p: *const u8) -> (u8, u8) {
    // SAFETY: shared paragraph for both
    let a = unsafe { *p };
    let b = unsafe { *p };
    (a, b)
}
";
        assert_eq!(violations(shared), vec![("D05".into(), 4)]);
    }

    #[test]
    fn d05_blank_line_breaks_adjacency() {
        let src = "// SAFETY: too far away\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(violations(src), vec![("D05".into(), 3)]);
    }

    #[test]
    fn report_counts_and_exit_gate() {
        let fr = analyze_source(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap;\nfn f() {}\n",
        );
        let (text, n) = render_report(&[fr]);
        assert_eq!(n, 1);
        assert!(text.contains("D01"));
        assert!(text.contains("crates/sim/src/x.rs:1"));
    }
}
