//! Structural tracker: recovers item/block shape from the lexed token
//! stream — no `syn`, no grammar, just brace discipline.
//!
//! [`build`] walks the tokens once and produces a [`Structure`]:
//!
//! * every `{ … }` block with its token span, line span and nesting
//!   depth (closures, match arms, async blocks and items all count —
//!   the tracker is deliberately agnostic about *why* a brace opened);
//! * every `fn` item with its name, `async`-ness and body block;
//! * every `.await` point;
//! * the token ranges covered by `#[test]` / `#[cfg(test)]` items, so
//!   rules can exempt test code without path heuristics.
//!
//! The tracker is resilient by construction to the things that break
//! naive brace counters: braces inside string/char literals and
//! comments never reach the token stream (the lexer ate them), braces
//! inside attributes are skipped with the attribute, and `>>` in
//! generics is invisible because the tracker never counts angle
//! brackets. Malformed input degrades to "unclosed block runs to EOF",
//! which is safe for a linter.

use crate::lexer::{Lexed, TokKind};

/// One `{ … }` block. `close_tok`/`close_line` point at the closing
/// brace; an unterminated block (EOF) spans to the end of the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Token index of the opening `{`.
    pub open_tok: usize,
    /// Token index of the closing `}` (or `tokens.len()` if unclosed).
    pub close_tok: usize,
    /// 1-based line of the opening `{`.
    pub open_line: u32,
    /// 1-based line of the closing `}` (or the last token's line).
    pub close_line: u32,
    /// Nesting depth: 0 for module-level blocks.
    pub depth: u32,
}

impl Block {
    /// Does this block's body (exclusive of the braces) contain `tok`?
    #[inline]
    pub fn contains(&self, tok: usize) -> bool {
        self.open_tok < tok && tok < self.close_tok
    }
}

/// One `fn` item (free fn, method, trait default — anything introduced
/// by the `fn` keyword followed by a name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnItem {
    pub name: String,
    /// `async fn` (directly; async *blocks* inside a sync fn don't count).
    pub is_async: bool,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Index into [`Structure::blocks`] of the body, if any (trait
    /// method declarations have none).
    pub body: Option<usize>,
    /// Inside a `#[test]` fn or a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Output of [`build`]: blocks, fns, awaits and test spans.
#[derive(Debug, Default)]
pub struct Structure {
    pub blocks: Vec<Block>,
    pub fns: Vec<FnItem>,
    /// Token indices of the `await` identifier in each `.await`.
    pub awaits: Vec<usize>,
    /// Half-open token ranges `[start, end)` covered by test items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl Structure {
    /// Is token index `tok` inside a `#[test]`/`#[cfg(test)]` item?
    pub fn in_test(&self, tok: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= tok && tok < e)
    }

    /// The innermost fn whose body contains token index `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| {
                f.body
                    .map(|b| self.blocks[b].contains(tok))
                    .unwrap_or(false)
            })
            .max_by_key(|f| self.blocks[f.body.unwrap_or(0)].open_tok)
    }
}

/// Identifiers that may legally sit between a visibility/qualifier run
/// and the `fn` keyword (`pub(in crate::x) const unsafe extern "C" fn`).
fn is_fn_qualifier(kind: &TokKind) -> bool {
    match kind {
        TokKind::Ident(s) => {
            matches!(
                s.as_str(),
                "pub"
                    | "const"
                    | "async"
                    | "unsafe"
                    | "extern"
                    | "crate"
                    | "super"
                    | "self"
                    | "in"
                    | "default"
            )
        }
        TokKind::PathSep => true,
        TokKind::Punct(p) => matches!(p, b'(' | b')'),
    }
}

/// Build the structural index for a lexed file.
pub fn build(lx: &Lexed) -> Structure {
    let toks = &lx.tokens;
    let mut st = Structure::default();
    let mut stack: Vec<usize> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    let mut test_armed = false;
    let mut test_blocks: Vec<usize> = Vec::new();
    let mut last_line = 1u32;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        last_line = t.line;
        match &t.kind {
            // ---- attributes: skip `#[…]` / `#![…]` wholesale ------------
            TokKind::Punct(b'#') => {
                let mut j = i + 1;
                let inner = j < toks.len() && toks[j].kind.is_punct(b'!');
                if inner {
                    j += 1;
                }
                if j < toks.len() && toks[j].kind.is_punct(b'[') {
                    let mut depth = 0usize;
                    let mut saw_test = false;
                    let mut saw_not = false;
                    while j < toks.len() {
                        match &toks[j].kind {
                            TokKind::Punct(b'[') => depth += 1,
                            TokKind::Punct(b']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokKind::Ident(s) if s == "test" => saw_test = true,
                            TokKind::Ident(s) if s == "not" => saw_not = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    // An outer attr mentioning `test` (and not `not(test)`)
                    // arms the next item's body as a test range.
                    if !inner && saw_test && !saw_not {
                        test_armed = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            // ---- fn items ----------------------------------------------
            TokKind::Ident(s) if s == "fn" => {
                // `fn(` with no name is a fn-pointer type, not an item.
                if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    let mut is_async = false;
                    let mut k = i;
                    while k > 0 && is_fn_qualifier(&toks[k - 1].kind) {
                        k -= 1;
                        if toks[k].kind.is_ident("async") {
                            is_async = true;
                        }
                    }
                    st.fns.push(FnItem {
                        name: name.clone(),
                        is_async,
                        fn_tok: i,
                        line: t.line,
                        body: None,
                        in_test: false,
                    });
                    pending_fn = Some(st.fns.len() - 1);
                }
            }
            // ---- `.await` ----------------------------------------------
            TokKind::Ident(s) if s == "await" && i > 0 && toks[i - 1].kind.is_punct(b'.') => {
                st.awaits.push(i);
            }
            // ---- blocks ------------------------------------------------
            TokKind::Punct(b'{') => {
                let bi = st.blocks.len();
                st.blocks.push(Block {
                    open_tok: i,
                    close_tok: toks.len(),
                    open_line: t.line,
                    close_line: last_line,
                    depth: stack.len() as u32,
                });
                if let Some(f) = pending_fn.take() {
                    st.fns[f].body = Some(bi);
                }
                if test_armed {
                    test_blocks.push(bi);
                    test_armed = false;
                }
                stack.push(bi);
            }
            TokKind::Punct(b'}') => {
                if let Some(bi) = stack.pop() {
                    st.blocks[bi].close_tok = i;
                    st.blocks[bi].close_line = t.line;
                }
            }
            // A `;` before any `{` ends a bodyless decl (`fn f();`,
            // `#[cfg(test)] mod tests;`).
            TokKind::Punct(b';') => {
                pending_fn = None;
                test_armed = false;
            }
            _ => {}
        }
        i += 1;
    }
    // Unclosed blocks run to EOF; fix their close lines.
    for &bi in &stack {
        st.blocks[bi].close_line = last_line;
    }
    st.test_ranges = test_blocks
        .iter()
        .map(|&bi| {
            let b = &st.blocks[bi];
            (b.open_tok, b.close_tok.saturating_add(1))
        })
        .collect();
    // A fn is test code if its body *is* a test block (`#[test] fn`) or
    // its `fn` keyword sits inside one (`#[cfg(test)] mod tests { … }`).
    for fi in 0..st.fns.len() {
        let body_is_test = st.fns[fi]
            .body
            .map(|b| test_blocks.contains(&b))
            .unwrap_or(false);
        let in_range = st
            .test_ranges
            .iter()
            .any(|&(s, e)| s <= st.fns[fi].fn_tok && st.fns[fi].fn_tok < e);
        st.fns[fi].in_test = body_is_test || in_range;
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build_src(src: &str) -> Structure {
        build(&lex(src))
    }

    #[test]
    fn fn_boundaries_and_bodies() {
        let st = build_src("fn a() { 1 }\npub async fn b(x: u32) -> u32 { x }\n");
        assert_eq!(st.fns.len(), 2);
        assert_eq!(st.fns[0].name, "a");
        assert!(!st.fns[0].is_async);
        assert_eq!(st.fns[1].name, "b");
        assert!(st.fns[1].is_async);
        let body = st.blocks[st.fns[1].body.unwrap()].clone();
        assert_eq!(body.open_line, 2);
        assert_eq!(body.close_line, 2);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let st = build_src("fn a(cb: fn(u32) -> u32) { cb(1); }");
        assert_eq!(st.fns.len(), 1);
        assert_eq!(st.fns[0].name, "a");
    }

    #[test]
    fn trait_decl_without_body_has_no_block() {
        let st = build_src("trait T { fn f(&self); fn g(&self) { } }");
        assert_eq!(st.fns.len(), 2);
        assert!(st.fns[0].body.is_none());
        assert!(st.fns[1].body.is_some());
    }

    #[test]
    fn awaits_are_located() {
        let st = build_src("async fn f() { g().await; h.i().await }");
        assert_eq!(st.awaits.len(), 2);
        let f = st.enclosing_fn(st.awaits[0]).unwrap();
        assert_eq!(f.name, "f");
    }

    #[test]
    fn test_attr_marks_fn_and_cfg_test_marks_module() {
        let src = "fn real() {}\n#[test]\nfn t() { real() }\n\
                   #[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n\
                   #[cfg(not(test))]\nfn prod() {}\n";
        let st = build_src(src);
        let by_name = |n: &str| st.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("real").in_test);
        assert!(by_name("t").in_test);
        assert!(by_name("helper").in_test);
        assert!(!by_name("prod").in_test);
    }

    #[test]
    fn generics_closures_and_match_guards_do_not_confuse_spans() {
        let src = "fn f<T: Into<Vec<Vec<u8>>>>(x: T) -> u64 {\n\
                     let g = |y: u64| y >> 2;\n\
                     match g(1) { n if n > 0 => { n }, _ => 0 }\n\
                   }\n";
        let st = build_src(src);
        assert_eq!(st.fns.len(), 1);
        let body = &st.blocks[st.fns[0].body.unwrap()];
        assert_eq!(body.open_line, 1);
        assert_eq!(body.close_line, 4);
        assert_eq!(body.depth, 0);
    }

    #[test]
    fn braces_in_strings_and_attrs_are_invisible() {
        let src = "#[doc = \"{ not a block\"]\nfn f() { let s = \"}}}\"; s.len() }";
        let st = build_src(src);
        assert_eq!(st.fns.len(), 1);
        assert_eq!(st.blocks.len(), 1);
        assert_eq!(st.blocks[0].close_line, 2);
    }

    #[test]
    fn unclosed_block_runs_to_eof() {
        let st = build_src("fn f() { let x = 1;");
        assert_eq!(
            st.blocks[0].close_tok,
            lex("fn f() { let x = 1;").tokens.len()
        );
    }
}
