//! `simlint` CLI — the determinism & unsafe-audit gate.
//!
//! ```text
//! cargo run -p simlint --release                       # scan the workspace
//! cargo run -p simlint --release -- path/to/file.rs    # scan explicit paths
//! cargo run -p simlint --release -- --report out.txt   # also write the report
//! cargo run -p simlint --release -- --json out.json    # machine-readable report
//! cargo run -p simlint --release -- --update-baseline  # regenerate the ratchet
//! ```
//!
//! Exit codes: `0` clean, `1` at least one unwaived violation, `2` usage
//! or I/O error. Explicit path arguments bypass the `fixtures/` skip so
//! CI can smoke-check the gate against a planted violation.
//!
//! The ratchet baseline (`results/simlint_baseline.json`, override with
//! `--baseline FILE`, disable with `--no-baseline`) excuses committed
//! legacy P01/U01 debt per file; anything beyond the recorded counts
//! gates exactly like a violation in new code. Baseline application is
//! skipped when explicit PATHS are given — planted-violation smoke
//! checks must see the raw verdict.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::baseline::{apply, render_json, Baseline};
use simlint::{analyze_files, collect_paths, default_files, render_report, workspace_root};

const USAGE: &str = "usage: simlint [PATHS...] [--report FILE] [--json FILE] [--baseline FILE | --no-baseline] [--update-baseline]
  PATHS              .rs files or directories to scan (default: the workspace's
                     crates/, tests/ and examples/, skipping target/, vendor/
                     and fixtures/)
  --report FILE      also write the text report to FILE (parent dirs created)
  --json FILE        also write the machine-readable JSON report to FILE
  --baseline FILE    ratchet baseline to apply (default:
                     <root>/results/simlint_baseline.json when present;
                     never applied when explicit PATHS are given)
  --no-baseline      gate everything at zero, ignoring any baseline
  --update-baseline  rewrite the baseline from the current scan's
                     ratchet-rule violations, then apply it";

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut report_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --report needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --json needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --baseline needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--no-baseline" => no_baseline = true,
            "--update-baseline" => update_baseline = true,
            flag if flag.starts_with('-') => {
                eprintln!("simlint: unknown flag {flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let Some(root) = workspace_root() else {
        eprintln!("simlint: no workspace root found (no ancestor Cargo.toml with [workspace])");
        return ExitCode::from(2);
    };
    let explicit = !paths.is_empty();
    let files = if explicit {
        collect_paths(&paths)
    } else {
        default_files(&root)
    };
    if files.is_empty() {
        eprintln!("simlint: nothing to scan");
        return ExitCode::from(2);
    }

    let mut reports = analyze_files(&root, &files);

    // -- ratchet ------------------------------------------------------
    let default_baseline = root.join("results/simlint_baseline.json");
    let baseline_file = baseline_path.or_else(|| {
        (!no_baseline && !explicit && default_baseline.is_file()).then_some(default_baseline)
    });
    let mut baseline: Option<Baseline> = None;
    if update_baseline {
        let b = Baseline::from_reports(&reports);
        let out = baseline_file
            .clone()
            .unwrap_or_else(|| root.join("results/simlint_baseline.json"));
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&out, b.render()) {
            eprintln!("simlint: cannot write baseline {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "simlint: baseline rewritten ({} excused site(s)) -> {}",
            b.total(),
            out.display()
        );
        baseline = Some(b);
    } else if let Some(path) = &baseline_file {
        if no_baseline {
            // explicit --baseline wins over --no-baseline only if both
            // were given; treat that as a usage error instead of guessing
            eprintln!("simlint: --baseline and --no-baseline are mutually exclusive");
            return ExitCode::from(2);
        }
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => baseline = Some(b),
            Err(e) => {
                eprintln!("simlint: bad baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Some(b) = &baseline {
        apply(&mut reports, b);
    }

    let (text, violations) = render_report(&reports);
    print!("{text}");
    if let Some(path) = report_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("simlint: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = json_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let json = render_json(&reports, baseline.as_ref());
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("simlint: cannot write JSON report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if violations > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
