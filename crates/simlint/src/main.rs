//! `simlint` CLI — the determinism & unsafe-audit gate.
//!
//! ```text
//! cargo run -p simlint --release                       # scan the workspace
//! cargo run -p simlint --release -- path/to/file.rs    # scan explicit paths
//! cargo run -p simlint --release -- --report out.txt   # also write the report
//! ```
//!
//! Exit codes: `0` clean, `1` at least one unwaived violation, `2` usage
//! or I/O error. Explicit path arguments bypass the `fixtures/` skip so
//! CI can smoke-check the gate against a planted violation.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{analyze_files, collect_paths, default_files, render_report, workspace_root};

const USAGE: &str = "usage: simlint [PATHS...] [--report FILE]
  PATHS          .rs files or directories to scan (default: the workspace's
                 crates/, tests/ and examples/, skipping target/, vendor/
                 and fixtures/)
  --report FILE  also write the report to FILE (parent dirs are created)";

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --report needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("simlint: unknown flag {flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let Some(root) = workspace_root() else {
        eprintln!("simlint: no workspace root found (no ancestor Cargo.toml with [workspace])");
        return ExitCode::from(2);
    };
    let files = if paths.is_empty() {
        default_files(&root)
    } else {
        collect_paths(&paths)
    };
    if files.is_empty() {
        eprintln!("simlint: nothing to scan");
        return ExitCode::from(2);
    }

    let reports = analyze_files(&root, &files);
    let (text, violations) = render_report(&reports);
    print!("{text}");
    if let Some(path) = report_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("simlint: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if violations > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
