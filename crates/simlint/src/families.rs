//! Structural rule families: P01 panic-freedom, U01 unit-safety,
//! A01 await-hazards, C01 charge-accounting.
//!
//! These rules need more than token adjacency — they consume the
//! [`crate::structure`] index (fn boundaries, block spans, `.await`
//! points, test ranges) built over the [`crate::lexer`] stream.
//!
//! | rule | contract |
//! |------|----------|
//! | P01  | no `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in simulation-visible crates unless carrying an adjacent audited `// INVARIANT:` comment (one claim per comment, D05-style) |
//! | U01  | no raw `as u64/usize/f64/…` cast in a statement that mixes the bytes, nanoseconds and rate vocabularies — route the arithmetic through `sim::units` instead |
//! | A01  | no `RefCell` borrow or lock guard bound by `let` and still live across an `.await` — a deterministic-deadlock / re-borrow-panic class |
//! | C01  | an async fn in `vos`/`media` that touches payload-iterating machinery must also reach the charged cost engine in the same body |
//!
//! Test code (`#[test]` fns, `#[cfg(test)]` modules) is exempt from all
//! four families: a panicking assert in a test is the point, not a bug.

use std::collections::BTreeMap;

use crate::lexer::{Lexed, TokKind};
use crate::structure::Structure;

pub const P01_ID: &str = "P01";
pub const P01_TITLE: &str = "panic-freedom on simulation-visible paths";
pub const U01_ID: &str = "U01";
pub const U01_TITLE: &str = "no raw casts across bytes/nanoseconds/rate unit boundaries";
pub const A01_ID: &str = "A01";
pub const A01_TITLE: &str = "no RefCell borrow or lock guard live across .await";
pub const C01_ID: &str = "C01";
pub const C01_TITLE: &str = "payload iteration must reach the charged cost engine";

/// Crates whose `src/` is simulation-visible: a panic here can take
/// down a simulated run that the paper's figures depend on.
pub const SIM_VISIBLE: [&str; 8] = [
    "crates/sim/src/",
    "crates/core/src/",
    "crates/fabric/src/",
    "crates/vos/src/",
    "crates/dfs/src/",
    "crates/media/src/",
    "crates/placement/src/",
    "crates/raft/src/",
];

/// U01 also covers the bench layer (figures do unit arithmetic too).
pub const U01_EXTRA: [&str; 1] = ["crates/bench/src/"];

/// Blessed conversion modules: the newtypes themselves must cast at the
/// boundary, so raw casts there are *sanctioned*, not violations.
pub const U01_SANCTIONED: [&str; 2] = ["crates/sim/src/units.rs", "crates/sim/src/time.rs"];

/// C01 zone: the crates that own payload bytes and their cost engine.
pub const C01_ZONE: [&str; 2] = ["crates/vos/src/", "crates/media/src/"];

/// One family hit, pre-routing: `audited` carries the `INVARIANT:`
/// justification when the site is claimed, `sanctioned` marks blessed
/// zones (both bypass the violation path in `analyze_source`).
#[derive(Clone, Debug)]
pub struct FamilyHit {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub what: String,
    pub audited: Option<String>,
    pub sanctioned: bool,
}

/// Run every family on one lexed+indexed file.
pub fn check(rel_path: &str, lx: &Lexed, st: &Structure) -> Vec<FamilyHit> {
    let mut out = Vec::new();
    p01(rel_path, lx, st, &mut out);
    u01(rel_path, lx, st, &mut out);
    a01(rel_path, lx, st, &mut out);
    c01(rel_path, lx, st, &mut out);
    out.sort_by_key(|h| (h.line, h.col, h.rule));
    out
}

// ---------------------------------------------------------------------
// P01 — panic-freedom
// ---------------------------------------------------------------------

/// Extract the justification from an `INVARIANT:` audit comment.
/// Mirrors the D05 `SAFETY:` shape: `// INVARIANT: …` or a block
/// comment whose first non-empty line is `INVARIANT: …` (allowing a
/// leading `*`).
fn invariant_reason(text: &str) -> Option<String> {
    text.lines()
        .map(|l| l.trim().trim_start_matches('*').trim_start())
        .find(|l| !l.is_empty())
        .and_then(|l| l.strip_prefix("INVARIANT:"))
        .map(|r| r.trim().to_string())
}

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn p01(rel_path: &str, lx: &Lexed, st: &Structure, out: &mut Vec<FamilyHit>) {
    if !SIM_VISIBLE.iter().any(|z| rel_path.starts_with(z)) {
        return;
    }
    // INVARIANT comments are claimable once each, exactly like SAFETY.
    let mut audits: BTreeMap<u32, (bool, String)> = lx
        .comments
        .iter()
        .filter_map(|c| invariant_reason(&c.text).map(|r| (c.line, (false, r))))
        .collect();
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        let what = match &toks[i].kind {
            TokKind::Ident(s) if PANIC_METHODS.contains(&s.as_str()) => {
                // `.unwrap()` the method call, not `unwrap_or` (distinct
                // ident) and not a fn *named* unwrap (no leading dot).
                if i == 0 || !toks[i - 1].kind.is_punct(b'.') {
                    continue;
                }
                format!(".{s}()")
            }
            TokKind::Ident(s) if PANIC_MACROS.contains(&s.as_str()) => {
                if !toks
                    .get(i + 1)
                    .map(|t| t.kind.is_punct(b'!'))
                    .unwrap_or(false)
                {
                    continue;
                }
                format!("{s}!")
            }
            _ => continue,
        };
        if st.in_test(i) {
            continue;
        }
        let t = &toks[i];
        // claim an audit: same line first, else the nearest comment in
        // the contiguous comment block above.
        let mut audited = None;
        if let Some((claimed, reason)) = audits.get_mut(&t.line) {
            if !*claimed {
                *claimed = true;
                audited = Some(reason.clone());
            }
        }
        if audited.is_none() {
            let mut k = t.line.saturating_sub(1);
            while k > 0 && lx.comment_lines.contains(&k) {
                if let Some((claimed, reason)) = audits.get_mut(&k) {
                    if !*claimed {
                        *claimed = true;
                        audited = Some(reason.clone());
                    }
                    break; // claimed or not, this block's audit is spoken for
                }
                k -= 1;
            }
        }
        out.push(FamilyHit {
            rule: P01_ID,
            line: t.line,
            col: t.col,
            what,
            audited,
            sanctioned: false,
        });
    }
}

// ---------------------------------------------------------------------
// U01 — unit-safety
// ---------------------------------------------------------------------

const CAST_TYPES: [&str; 7] = ["u64", "usize", "u32", "i64", "u128", "f64", "f32"];

/// Vocabulary families. A statement whose identifiers span ≥2 families
/// *and* contains a raw numeric cast is crossing a unit boundary.
const FAM_BYTES: [&str; 16] = [
    "bytes",
    "byte",
    "nbytes",
    "size",
    "block_bytes",
    "granularity",
    "kib",
    "mib",
    "gib",
    "tib",
    "capacity",
    "bulk_bytes",
    "frame_bytes",
    "payload_bytes",
    "chunk_bytes",
    "resident_bytes",
];
const FAM_NANOS: [&str; 14] = [
    "ns",
    "nanos",
    "ns_for",
    "as_ns",
    "from_ns",
    "busy_ns",
    "latency_ns",
    "deadline_ns",
    "elapsed_ns",
    "wire_ns",
    "wait_ns",
    "service_ns",
    "sleep_ns",
    "stall_ns",
];
const FAM_RATE: [&str; 12] = [
    "bw",
    "bandwidth",
    "rate",
    "gib_per_sec",
    "bytes_per_sec",
    "gbit_per_sec",
    "mib_per_sec",
    "gibps",
    "bps",
    "goodput",
    "throughput",
    "iops",
];

fn family_of(id: &str) -> Option<&'static str> {
    let low = id.to_ascii_lowercase();
    let low = low.as_str();
    if FAM_BYTES.contains(&low) {
        return Some("bytes");
    }
    if FAM_NANOS.contains(&low) {
        return Some("ns");
    }
    if FAM_RATE.contains(&low) {
        return Some("rate");
    }
    None
}

fn u01(rel_path: &str, lx: &Lexed, st: &Structure, out: &mut Vec<FamilyHit>) {
    let in_zone = SIM_VISIBLE
        .iter()
        .chain(U01_EXTRA.iter())
        .any(|z| rel_path.starts_with(z));
    if !in_zone {
        return;
    }
    let sanctioned = U01_SANCTIONED.contains(&rel_path);
    let toks = &lx.tokens;
    // Statement segmentation: `;` and `{`/`}` bound a statement.
    let mut start = 0usize;
    for i in 0..=toks.len() {
        let boundary = i == toks.len()
            || matches!(
                &toks[i].kind,
                TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}')
            );
        if !boundary {
            continue;
        }
        let stmt = &toks[start..i];
        let stmt_start = start;
        start = i + 1;
        if stmt.is_empty() || st.in_test(stmt_start) {
            continue;
        }
        // find raw casts `as <numeric>`
        let mut casts: Vec<usize> = Vec::new();
        for k in 0..stmt.len().saturating_sub(1) {
            if stmt[k].kind.is_ident("as") {
                if let TokKind::Ident(t) = &stmt[k + 1].kind {
                    if CAST_TYPES.contains(&t.as_str()) {
                        casts.push(k);
                    }
                }
            }
        }
        if casts.is_empty() {
            continue;
        }
        // classify the statement's vocabulary
        let mut fams: Vec<&'static str> = Vec::new();
        for t in stmt {
            if let TokKind::Ident(s) = &t.kind {
                if let Some(f) = family_of(s) {
                    if !fams.contains(&f) {
                        fams.push(f);
                    }
                }
            }
        }
        if fams.len() < 2 {
            continue;
        }
        let k = casts[0];
        let target = match &stmt[k + 1].kind {
            TokKind::Ident(t) => t.clone(),
            _ => unreachable!("cast target checked above"),
        };
        out.push(FamilyHit {
            rule: U01_ID,
            line: stmt[k].line,
            col: stmt[k].col,
            what: format!("`as {target}` in a {} statement", fams.join("×")),
            audited: None,
            sanctioned,
        });
    }
}

// ---------------------------------------------------------------------
// A01 — await-hazards
// ---------------------------------------------------------------------

/// Methods whose return value is a scoped guard: holding one across an
/// `.await` in a single-threaded cooperative executor is a recipe for a
/// deterministic re-borrow panic or deadlock. (`Semaphore::acquire` is
/// *designed* to be held across awaits and is not listed.)
const GUARD_METHODS: [&str; 4] = ["borrow", "borrow_mut", "lock", "try_borrow_mut"];

fn a01(rel_path: &str, lx: &Lexed, st: &Structure, out: &mut Vec<FamilyHit>) {
    if !SIM_VISIBLE.iter().any(|z| rel_path.starts_with(z)) {
        return;
    }
    let toks = &lx.tokens;
    #[derive(Clone)]
    struct Guard {
        name: String,
        method: String,
        line: u32,
        /// Token index where the binding statement ends — the guard is
        /// only live for awaits *after* its own initializer.
        live_from: usize,
        dropped: bool,
    }
    struct Scope {
        guards: Vec<Guard>,
        /// An `async { }` / `async move { }` block is a *barrier*: its
        /// awaits run in a different task activation, so guards bound
        /// outside it are not held across them.
        barrier: bool,
    }
    // per-open-block guard scopes; index 0 = file scope
    let mut scopes: Vec<Scope> = vec![Scope {
        guards: Vec::new(),
        barrier: false,
    }];
    // `if let` / `while let` scrutinee guards: in Rust 2021 the
    // temporary lives to the end of the *body*, so they attach to the
    // next opened block rather than the enclosing scope.
    let mut pending_cond: Vec<Guard> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct(b'{') => {
                let before = |n: usize| i.checked_sub(n).map(|k| &toks[k].kind);
                let barrier = matches!(before(1), Some(TokKind::Ident(s)) if s == "async")
                    || (matches!(before(1), Some(TokKind::Ident(s)) if s == "move")
                        && matches!(before(2), Some(TokKind::Ident(s)) if s == "async"));
                let mut guards = Vec::new();
                guards.append(&mut pending_cond);
                scopes.push(Scope { guards, barrier });
            }
            TokKind::Punct(b'}') if scopes.len() > 1 => {
                scopes.pop();
            }
            TokKind::Ident(s) if s == "let" && !st.in_test(i) => {
                // binding name: first ident after `let`, skipping `mut`
                let mut j = i + 1;
                let mut name = None;
                while j < toks.len() && j < i + 6 {
                    match &toks[j].kind {
                        TokKind::Ident(m) if m == "mut" => {}
                        TokKind::Ident(n) => {
                            name = Some(n.clone());
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                // Scan the initializer (to `;` or a body-opening `{` at
                // this nesting level) for a guard-producing method call.
                // The guard must be the *final* call of its chain: in
                // `let v = c.borrow().clone()` the temporary guard dies
                // at the end of the statement and `v` is a plain value.
                let mut depth = 0i32;
                let mut method: Option<(String, i32)> = None;
                let mut k = j;
                while k < toks.len() {
                    match &toks[k].kind {
                        TokKind::Punct(b'{') if depth == 0 => break,
                        TokKind::Punct(b'{') | TokKind::Punct(b'(') => depth += 1,
                        TokKind::Punct(b'}') | TokKind::Punct(b')') => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        TokKind::Punct(b';') if depth == 0 => break,
                        TokKind::Ident(m) if k > 0 && toks[k - 1].kind.is_punct(b'.') => {
                            if GUARD_METHODS.contains(&m.as_str()) {
                                method = Some((m.clone(), depth));
                            } else if let Some((_, d)) = &method {
                                if depth <= *d {
                                    // a later call consumed the guard
                                    method = None;
                                }
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let method = method.map(|(m, _)| m);
                if let (Some(name), Some(method)) = (name, method) {
                    let conditional = i > 0
                        && matches!(&toks[i - 1].kind,
                            TokKind::Ident(p) if p == "if" || p == "while");
                    let g = Guard {
                        name,
                        method,
                        line: toks[i].line,
                        live_from: k,
                        dropped: false,
                    };
                    if conditional {
                        pending_cond.push(g);
                    } else if let Some(scope) = scopes.last_mut() {
                        scope.guards.push(g);
                    }
                }
            }
            // `drop(name)` releases the guard early
            TokKind::Ident(s)
                if s == "drop"
                    && toks
                        .get(i + 1)
                        .map(|t| t.kind.is_punct(b'('))
                        .unwrap_or(false) =>
            {
                if let Some(TokKind::Ident(n)) = toks.get(i + 2).map(|t| &t.kind) {
                    for scope in scopes.iter_mut() {
                        for g in scope.guards.iter_mut() {
                            if &g.name == n {
                                g.dropped = true;
                            }
                        }
                    }
                }
            }
            TokKind::Ident(s)
                if s == "await" && i > 0 && toks[i - 1].kind.is_punct(b'.') && !st.in_test(i) =>
            {
                // walk scopes innermost-out, stopping at the nearest
                // async-block barrier (outer guards belong to the
                // spawning task, not this await's task)
                for scope in scopes.iter().rev() {
                    for g in &scope.guards {
                        if !g.dropped && i > g.live_from {
                            out.push(FamilyHit {
                                rule: A01_ID,
                                line: toks[i].line,
                                col: toks[i].col,
                                what: format!(
                                    "guard `{}` ({}(), bound line {}) live across .await",
                                    g.name, g.method, g.line
                                ),
                                audited: None,
                                sanctioned: false,
                            });
                        }
                    }
                    if scope.barrier {
                        break;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// C01 — charge-accounting
// ---------------------------------------------------------------------

/// Byte-iterating machinery: an async fn touching any of these is
/// walking payload bytes (or delegating to something that does).
const ITER_MARKERS: [&str; 10] = [
    "csum64",
    "csum64_bytes",
    "csum64_pattern",
    "csum_fold",
    "pattern_block",
    "PatternWords",
    "materialize",
    "verify_range",
    "chunks_exact",
    "inject_rot",
];

/// Charged cost-engine entry points: reaching one of these means the
/// simulated clock pays for the bytes walked.
const CHARGE_MARKERS: [&str; 10] = [
    "read_payload",
    "write_payload",
    "index_update",
    "meta_op",
    "transfer",
    "occupy",
    "reserve_after",
    "ns_for",
    "charge",
    "scm",
];

fn c01(rel_path: &str, lx: &Lexed, st: &Structure, out: &mut Vec<FamilyHit>) {
    if !C01_ZONE.iter().any(|z| rel_path.starts_with(z)) {
        return;
    }
    let toks = &lx.tokens;
    for f in &st.fns {
        if !f.is_async || f.in_test {
            continue;
        }
        let Some(bi) = f.body else { continue };
        let b = &st.blocks[bi];
        let body = &toks[b.open_tok..b.close_tok.min(toks.len())];
        let has = |set: &[&str]| {
            body.iter().any(|t| match &t.kind {
                TokKind::Ident(s) => set.contains(&s.as_str()),
                _ => false,
            })
        };
        if has(&ITER_MARKERS) && !has(&CHARGE_MARKERS) {
            out.push(FamilyHit {
                rule: C01_ID,
                line: f.line,
                col: 1,
                what: format!("async fn `{}` iterates payload bytes but never reaches the charged cost engine", f.name),
                audited: None,
                sanctioned: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::structure::build;

    fn run(path: &str, src: &str) -> Vec<FamilyHit> {
        let lx = lex(src);
        let st = build(&lx);
        check(path, &lx, &st)
    }

    fn rules(hits: &[FamilyHit]) -> Vec<&str> {
        hits.iter()
            .filter(|h| h.audited.is_none() && !h.sanctioned)
            .map(|h| h.rule)
            .collect()
    }

    #[test]
    fn p01_flags_unwrap_outside_tests_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        let hits = run("crates/vos/src/x.rs", src);
        assert_eq!(rules(&hits), vec![P01_ID]);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn p01_invariant_comment_audits_one_site_each() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                     // INVARIANT: x checked Some by caller\n\
                     x.unwrap()\n\
                   }\n";
        let hits = run("crates/vos/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].audited.as_deref(), Some("x checked Some by caller"));
        // one comment cannot claim two sites
        let src2 = "fn f(a: Option<u32>, b: Option<u32>) -> u32 {\n\
                      // INVARIANT: shared paragraph\n\
                      let x = a.unwrap();\n\
                      let y = b.unwrap();\n\
                      x + y\n\
                    }\n";
        let hits = run("crates/vos/src/x.rs", src2);
        assert_eq!(rules(&hits), vec![P01_ID]);
        assert_eq!(hits.iter().find(|h| h.audited.is_none()).unwrap().line, 4);
    }

    #[test]
    fn p01_macros_and_unwrap_or_variants() {
        let src = "fn f(x: u32) -> u32 {\n  if x > 9 { panic!(\"no\") }\n  x\n}\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        let hits = run("crates/sim/src/x.rs", src);
        assert_eq!(rules(&hits), vec![P01_ID]);
        assert_eq!(hits[0].what, "panic!");
    }

    #[test]
    fn p01_out_of_zone_is_silent() {
        assert!(run(
            "crates/bench/src/x.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }"
        )
        .is_empty());
    }

    #[test]
    fn u01_flags_cross_family_cast() {
        let src = "fn f(bytes: u64, bw: f64) -> u64 { (bytes as f64 * 1e9 / bw) as u64 }\n";
        let hits = run("crates/fabric/src/x.rs", src);
        assert_eq!(rules(&hits), vec![U01_ID]);
        assert!(hits[0].what.contains("bytes"), "{}", hits[0].what);
    }

    #[test]
    fn u01_single_family_cast_is_fine() {
        let src = "fn f(bytes: usize) -> u64 { bytes as u64 }\n";
        assert!(run("crates/fabric/src/x.rs", src).is_empty());
        // statistics over dimensionless counts: fine
        let src = "fn g(vals: &[f64]) -> f64 { vals.iter().sum::<f64>() / vals.len() as f64 }\n";
        assert!(run("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn u01_sanctioned_in_units_module() {
        let src =
            "pub fn ns_for(bytes: u64, bw: f64) -> u64 { (bytes as f64 * 1e9 / bw) as u64 }\n";
        let hits = run("crates/sim/src/units.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].sanctioned);
    }

    #[test]
    fn a01_flags_guard_live_across_await() {
        let src = "async fn f(c: RefCell<u32>) {\n\
                     let g = c.borrow_mut();\n\
                     step().await;\n\
                   }\n";
        let hits = run("crates/sim/src/x.rs", src);
        assert_eq!(rules(&hits), vec![A01_ID]);
        assert!(hits[0].what.contains("borrow_mut"));
    }

    #[test]
    fn a01_scoped_or_dropped_guard_is_fine() {
        let scoped = "async fn f(c: RefCell<u32>) {\n\
                        { let g = c.borrow_mut(); *g += 1; }\n\
                        step().await;\n\
                      }\n";
        assert!(run("crates/sim/src/x.rs", scoped).is_empty());
        let dropped = "async fn f(c: RefCell<u32>) {\n\
                         let g = c.borrow_mut();\n\
                         drop(g);\n\
                         step().await;\n\
                       }\n";
        assert!(run("crates/sim/src/x.rs", dropped).is_empty());
        // a temporary borrow that ends at the statement is fine
        let temp = "async fn f(c: RefCell<u32>) {\n\
                      *c.borrow_mut() += 1;\n\
                      step().await;\n\
                    }\n";
        assert!(run("crates/sim/src/x.rs", temp).is_empty());
    }

    #[test]
    fn c01_requires_charge_alongside_iteration() {
        let bad = "async fn materialize_all(&self, sim: &Sim) -> u64 {\n\
                     let h = csum64(&self.payload);\n\
                     h\n\
                   }\n";
        let hits = run("crates/vos/src/x.rs", bad);
        assert_eq!(rules(&hits), vec![C01_ID]);
        let good = "async fn materialize_all(&self, sim: &Sim) -> u64 {\n\
                      self.media.read_payload(sim, self.len).await;\n\
                      csum64(&self.payload)\n\
                    }\n";
        assert!(run("crates/vos/src/x.rs", good).is_empty());
        // sync helpers are the engine itself, not the IO path
        let sync_fn = "pub fn csum64(p: &[u8]) -> u64 { csum_fold(p) }\n";
        assert!(run("crates/vos/src/x.rs", sync_fn).is_empty());
    }
}
