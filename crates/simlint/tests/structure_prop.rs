//! Property tests for the structural tracker: generated snippets carry
//! their own ground truth (block / await / fn counts known at
//! construction), and the adversarial material — `>>` in generics,
//! closures, async blocks, match guards, raw strings and comments with
//! unbalanced braces — must never skew the tracker away from it. A raw
//! punct-stream brace counter serves as the independent reference.

use proptest::prelude::*;

use simlint::lexer::{lex, TokKind};
use simlint::structure::build;

/// A generated snippet plus the structural facts it was built to contain.
#[derive(Clone, Debug)]
struct Snip {
    src: String,
    blocks: usize,
    awaits: usize,
    fns: usize,
}

impl Snip {
    fn leaf(src: &str, blocks: usize, awaits: usize, fns: usize) -> Snip {
        Snip {
            src: src.to_string(),
            blocks,
            awaits,
            fns,
        }
    }
}

/// Statements with no nested snippet: the decoys. Braces inside raw
/// strings, plain strings, char literals and comments must not count;
/// `>>` must not be mistaken for anything structural; `await_timeout`
/// must not read as `.await`.
fn leaves() -> impl Strategy<Value = Snip> {
    prop_oneof![
        Just(Snip::leaf(
            "let v: Vec<Vec<u8>> = cvt::<Vec<u8>>(n >> 2);\n",
            0,
            0,
            0
        )),
        Just(Snip::leaf("let s = r#\"{ not a block }}\"#;\n", 0, 0, 0)),
        Just(Snip::leaf("let s2 = \"}} {\";\n", 0, 0, 0)),
        Just(Snip::leaf("let c = '{';\n", 0, 0, 0)),
        Just(Snip::leaf("// { dangling open\n", 0, 0, 0)),
        Just(Snip::leaf("/* } stray close { */\n", 0, 0, 0)),
        Just(Snip::leaf("let t = x.await_timeout();\n", 0, 0, 0)),
        Just(Snip::leaf("fut.await;\n", 0, 1, 0)),
        Just(Snip::leaf(
            "match v { Some(x) if x > 0 => {} None => {} }\n",
            3,
            0,
            0
        )),
    ]
}

/// Wrap inner snippets in the constructs whose braces DO count: fn
/// items, async fns, closures, async blocks, bare blocks, and plain
/// concatenation. Hand-rolled depth recursion — the offline proptest
/// stand-in has no `prop_recursive`, but `BoxedStrategy` is cloneable.
fn snips(depth: u32) -> simlint_boxed::Boxed {
    if depth == 0 {
        return leaves().boxed();
    }
    let inner = snips(depth - 1);
    prop_oneof![
        leaves(),
        (inner.clone(), 0u32..1000).prop_map(|(s, id)| Snip {
            src: format!("fn f_{id}() {{ {} }}\n", s.src),
            blocks: s.blocks + 1,
            awaits: s.awaits,
            fns: s.fns + 1,
        }),
        (inner.clone(), 0u32..1000).prop_map(|(s, id)| Snip {
            src: format!("async fn g_{id}() {{ {} h().await; }}\n", s.src),
            blocks: s.blocks + 1,
            awaits: s.awaits + 1,
            fns: s.fns + 1,
        }),
        inner.clone().prop_map(|s| Snip {
            src: format!("let cl = move |q: u64| {{ {} q }};\n", s.src),
            blocks: s.blocks + 1,
            awaits: s.awaits,
            fns: s.fns,
        }),
        inner.clone().prop_map(|s| Snip {
            src: format!("spawn(async move {{ {} fut.await; }});\n", s.src),
            blocks: s.blocks + 1,
            awaits: s.awaits + 1,
            fns: s.fns,
        }),
        inner.clone().prop_map(|s| Snip {
            src: format!("{{ {} }}\n", s.src),
            blocks: s.blocks + 1,
            awaits: s.awaits,
            fns: s.fns,
        }),
        (inner.clone(), inner).prop_map(|(a, b)| Snip {
            src: format!("{}{}", a.src, b.src),
            blocks: a.blocks + b.blocks,
            awaits: a.awaits + b.awaits,
            fns: a.fns + b.fns,
        }),
    ]
    .boxed()
}

mod simlint_boxed {
    pub type Boxed = proptest::strategy::BoxedStrategy<super::Snip>;
}

proptest! {
    #[test]
    fn tracker_matches_generated_ground_truth(s in snips(4)) {
        let lx = lex(&s.src);
        let st = build(&lx);
        prop_assert_eq!(st.blocks.len(), s.blocks, "blocks in:\n{}", s.src);
        prop_assert_eq!(st.awaits.len(), s.awaits, "awaits in:\n{}", s.src);
        prop_assert_eq!(st.fns.len(), s.fns, "fns in:\n{}", s.src);

        // independent reference: raw brace counting over the punct stream
        let opens = lx.tokens.iter().filter(|t| t.kind.is_punct(b'{')).count();
        let closes = lx.tokens.iter().filter(|t| t.kind.is_punct(b'}')).count();
        prop_assert_eq!(opens, s.blocks);
        prop_assert_eq!(closes, s.blocks);

        // every generated snippet is balanced: blocks close after they
        // open and nest by stack discipline
        for b in &st.blocks {
            prop_assert!(b.open_tok < b.close_tok);
            prop_assert!(b.open_line <= b.close_line);
            prop_assert!(matches!(lx.tokens[b.open_tok].kind, TokKind::Punct(b'{')));
            prop_assert!(matches!(lx.tokens[b.close_tok].kind, TokKind::Punct(b'}')));
        }
        for (i, a) in st.blocks.iter().enumerate() {
            for b in st.blocks.iter().skip(i + 1) {
                // spans are nested or disjoint, never interleaved
                let nested = (a.open_tok < b.open_tok && b.close_tok < a.close_tok)
                    || (b.open_tok < a.open_tok && a.close_tok < b.close_tok);
                let disjoint = a.close_tok < b.open_tok || b.close_tok < a.open_tok;
                prop_assert!(nested || disjoint);
            }
        }

        // every fn body is a block whose span starts after the fn keyword
        for f in &st.fns {
            if let Some(bi) = f.body {
                prop_assert!(st.blocks[bi].open_tok > f.fn_tok);
            }
        }
    }

    #[test]
    fn crlf_twin_has_identical_structure(s in snips(4)) {
        let lf = build(&lex(&s.src));
        let crlf_src = s.src.replace('\n', "\r\n");
        let crlf = build(&lex(&crlf_src));
        prop_assert_eq!(lf.blocks.len(), crlf.blocks.len());
        prop_assert_eq!(lf.awaits.len(), crlf.awaits.len());
        prop_assert_eq!(lf.fns.len(), crlf.fns.len());
        // line anchoring must agree too, not just counts
        let lines = |st: &simlint::structure::Structure| {
            st.blocks.iter().map(|b| (b.open_line, b.close_line)).collect::<Vec<_>>()
        };
        prop_assert_eq!(lines(&lf), lines(&crlf));
    }
}
