//! Fixture-based self-tests: each per-rule good/bad snippet under
//! `fixtures/` must produce exactly the expected hits, and the committed
//! workspace itself must scan clean modulo the committed ratchet
//! baseline — `cargo test -p simlint` is the same gate CI runs via the
//! binary.

use std::path::{Path, PathBuf};

use simlint::{analyze_files, analyze_source, default_files, render_report, workspace_root};

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    // fixtures are analyzed as if they sat in a sim-facing crate
    (format!("crates/sim/src/{name}"), src)
}

fn rules_hit(name: &str) -> Vec<(String, u32)> {
    let (path, src) = fixture(name);
    analyze_source(&path, &src)
        .violations
        .iter()
        .map(|h| (h.rule.to_string(), h.line))
        .collect()
}

fn assert_clean(name: &str) {
    let (path, src) = fixture(name);
    let fr = analyze_source(&path, &src);
    assert!(
        fr.violations.is_empty(),
        "{name} should be clean, got {:?}",
        fr.violations
    );
}

#[test]
fn d01_bad_flags_every_hash_collection_use() {
    let hits = rules_hit("d01_bad.rs");
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| r == "D01"));
}

#[test]
fn d01_ok_lexer_cases_are_invisible() {
    assert_clean("d01_ok.rs");
}

#[test]
fn d02_bad_flags_instant_now_and_systemtime() {
    let hits = rules_hit("d02_bad.rs");
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| r == "D02"));
}

#[test]
fn d02_waived_is_clean_and_counted() {
    assert_clean("d02_waived.rs");
    let (path, src) = fixture("d02_waived.rs");
    let fr = analyze_source(&path, &src);
    assert_eq!(fr.waived.len(), 2, "{:?}", fr.waived);
    assert!(fr.waived.iter().all(|h| h.reason.is_some()));
}

#[test]
fn d03_bad_flags_ambient_randomness() {
    let hits = rules_hit("d03_bad.rs");
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| r == "D03"));
}

#[test]
fn d04_bad_flags_threads_outside_bench_but_sanctions_bench() {
    let hits = rules_hit("d04_bad.rs");
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| r == "D04"));
    // the same source inside the bench crate is sanctioned, not a violation
    let (_, src) = fixture("d04_bad.rs");
    let fr = analyze_source("crates/bench/src/sweep.rs", &src);
    assert!(fr.violations.is_empty());
    assert_eq!(fr.sanctioned.len(), 3);
}

#[test]
fn d05_bad_flags_missing_and_shared_safety() {
    let hits = rules_hit("d05_bad.rs");
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| r == "D05"));
}

#[test]
fn d05_ok_per_block_safety_passes() {
    assert_clean("d05_ok.rs");
}

#[test]
fn d00_bad_flags_pragma_hygiene() {
    let hits = rules_hit("d00_bad.rs");
    let d00 = hits.iter().filter(|(r, _)| r == "D00").count();
    let d02 = hits.iter().filter(|(r, _)| r == "D02").count();
    assert_eq!((d00, d02), (3, 1), "{hits:?}");
}

#[test]
fn lexer_torture_is_clean() {
    assert_clean("lexer_torture.rs");
}

#[test]
fn p01_bad_flags_unaudited_panic_sites() {
    let hits = rules_hit("p01_bad.rs");
    assert_eq!(hits.len(), 5, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| r == "P01"));
    // the shared INVARIANT paragraph claims only the first site
    let (path, src) = fixture("p01_bad.rs");
    let fr = analyze_source(&path, &src);
    assert_eq!(fr.audited.len(), 1, "{:?}", fr.audited);
}

#[test]
fn p01_ok_audits_tests_and_lookalikes_pass() {
    assert_clean("p01_ok.rs");
    let (path, src) = fixture("p01_ok.rs");
    let fr = analyze_source(&path, &src);
    assert_eq!(fr.audited.len(), 2, "{:?}", fr.audited);
    assert!(fr.audited.iter().all(|h| h.reason.is_some()));
}

#[test]
fn u01_bad_flags_cross_family_casts() {
    let hits = rules_hit("u01_bad.rs");
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| r == "U01"));
}

#[test]
fn u01_ok_single_family_and_typed_pass() {
    assert_clean("u01_ok.rs");
}

#[test]
fn a01_bad_flags_guards_held_across_await() {
    let hits = rules_hit("a01_bad.rs");
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| r == "A01"));
}

#[test]
fn a01_ok_scoped_dropped_extracted_isolated_pass() {
    assert_clean("a01_ok.rs");
}

#[test]
fn c01_bad_flags_uncharged_iteration() {
    // C01's zone is vos/media, so these fixtures analyze under vos
    let (_, src) = fixture("c01_bad.rs");
    let fr = analyze_source("crates/vos/src/c01_bad.rs", &src);
    let hits: Vec<_> = fr.violations.iter().map(|h| h.rule).collect();
    assert_eq!(hits, vec!["C01", "C01"], "{:?}", fr.violations);
}

#[test]
fn c01_ok_charged_sync_and_test_code_pass() {
    let (_, src) = fixture("c01_ok.rs");
    let fr = analyze_source("crates/vos/src/c01_ok.rs", &src);
    assert!(fr.violations.is_empty(), "{:?}", fr.violations);
}

#[test]
fn bad_fixtures_gate_the_exit_path() {
    // what CI's negative smoke check relies on: analyzing a planted
    // fixture yields a nonzero violation count through render_report
    for name in [
        "d01_bad.rs",
        "d02_bad.rs",
        "d03_bad.rs",
        "d04_bad.rs",
        "d05_bad.rs",
        "d00_bad.rs",
        "p01_bad.rs",
        "u01_bad.rs",
        "a01_bad.rs",
    ] {
        let (path, src) = fixture(name);
        let (_, n) = render_report(&[analyze_source(&path, &src)]);
        assert!(n > 0, "{name} must gate");
    }
    let (_, src) = fixture("c01_bad.rs");
    let (_, n) = render_report(&[analyze_source("crates/vos/src/c01_bad.rs", &src)]);
    assert!(n > 0, "c01_bad.rs must gate");
}

#[test]
fn committed_workspace_scans_clean_modulo_ratchet() {
    let root = workspace_root().expect("workspace root");
    let files = default_files(&root);
    assert!(
        files.len() > 50,
        "workspace walk looks truncated: {} files",
        files.len()
    );
    assert!(
        files.iter().all(|f| !f.components().any(|c| {
            let c = c.as_os_str().to_string_lossy();
            c == "fixtures" || c == "vendor" || c == "target"
        })),
        "walk must skip fixtures/, vendor/ and target/"
    );
    let mut reports = analyze_files(&root, &files);
    // dogfood with the committed ratchet applied — exactly what CI runs
    let base_src = std::fs::read_to_string(root.join("results/simlint_baseline.json"))
        .expect("committed ratchet baseline readable");
    let base = simlint::baseline::Baseline::parse(&base_src).expect("baseline parses");
    let excused = simlint::baseline::apply(&mut reports, &base);
    assert!(
        excused as u64 <= base.total(),
        "excused {excused} exceeds baseline total {}",
        base.total()
    );
    let (text, violations) = render_report(&reports);
    assert_eq!(
        violations, 0,
        "workspace must lint clean modulo the committed ratchet:\n{text}"
    );
}

#[test]
fn explicit_path_args_bypass_the_fixtures_skip() {
    let bad = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("d01_bad.rs");
    let root = workspace_root().expect("workspace root");
    let files: Vec<PathBuf> = simlint::collect_paths(&[bad]);
    assert_eq!(files.len(), 1);
    let reports = analyze_files(&root, &files);
    let (_, violations) = render_report(&reports);
    assert!(violations > 0);
}
