//! # daos-placement — pool map and algorithmic object placement
//!
//! DAOS places object shards on pool *targets* (one per engine service
//! thread/media slice) without central metadata: the layout is a pure
//! function of the object id, the object class and the pool map version.
//! This crate implements:
//!
//! * the [`PoolMap`] — ranks → engines → targets, with target exclusion
//!   (for rebuild) and map versioning;
//! * [`ObjectClass`] — the paper's `S1`/`S2`/…/`SX` sharding classes plus
//!   replicated (`RP_n`) and erasure-coded (`EC_k+p`) protection classes;
//! * deterministic pseudo-random layout generation (a Fisher–Yates draw
//!   seeded from the object id, the moral equivalent of DAOS's jump-map) and
//!   the classic jump-consistent-hash for single-shard placement.
//!
//! The *statistics* of these layouts are what the paper's Figures 1–2 hinge
//! on: `S1` hashes whole files onto single targets (binomial imbalance →
//! stragglers), `S2` halves the variance, `SX` stripes every object over all
//! targets (perfect balance, maximal fan-out).

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::collections::BTreeSet;

/// A flat target identifier within a pool (dense, `0..target_count`).
pub type TargetId = u32;

/// 128-bit DAOS object identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    pub hi: u64,
    pub lo: u64,
}

impl ObjectId {
    /// Construct from parts.
    pub fn new(hi: u64, lo: u64) -> Self {
        ObjectId { hi, lo }
    }
    /// Mix both words into one well-distributed 64-bit value.
    pub fn mix(&self) -> u64 {
        splitmix64(splitmix64(self.hi) ^ self.lo.rotate_left(17))
    }
}

/// SplitMix64 — cheap, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lamping–Veach jump consistent hash: maps `key` to a bucket in
/// `[0, n_buckets)` such that growing `n_buckets` relocates only the
/// minimal fraction of keys.
pub fn jump_consistent_hash(mut key: u64, n_buckets: u32) -> u32 {
    assert!(n_buckets > 0);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < n_buckets as i64 {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        let r = ((key >> 33) + 1) as f64;
        j = ((b.wrapping_add(1)) as f64 * ((1u64 << 31) as f64 / r)) as i64;
    }
    b as u32
}

// ------------------------------------------------------------ ObjectClass

/// Data distribution + protection class of an object (a subset of DAOS's
/// `OC_*` catalogue, covering everything the paper exercises plus the
/// protection classes DAOS advertises as "advanced data protection").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectClass {
    /// `S{n}`: n-way sharded, no redundancy. `S1` is one shard.
    Sharded(u16),
    /// `SX`: sharded over every active target in the pool.
    ShardedMax,
    /// `RP_{r}`: each shard group has `r` replicas; `groups` stripe groups
    /// (`None` = max, i.e. `RP_rGX`).
    Replicated { replicas: u16, groups: Option<u16> },
    /// `EC_{k}P{p}`: k data + p parity cells per stripe; `groups` stripe
    /// groups (`None` = max).
    ErasureCoded {
        data: u16,
        parity: u16,
        groups: Option<u16>,
    },
}

impl ObjectClass {
    /// `S1` — a single shard (the paper's baseline class).
    pub const S1: ObjectClass = ObjectClass::Sharded(1);
    /// `S2` — two shards.
    pub const S2: ObjectClass = ObjectClass::Sharded(2);
    /// `S4` — four shards.
    pub const S4: ObjectClass = ObjectClass::Sharded(4);
    /// `S8` — eight shards.
    pub const S8: ObjectClass = ObjectClass::Sharded(8);
    /// `SX` — one shard on every target.
    pub const SX: ObjectClass = ObjectClass::ShardedMax;
    /// `RP_2GX` — 2-way replication, max groups.
    pub const RP_2GX: ObjectClass = ObjectClass::Replicated {
        replicas: 2,
        groups: None,
    };
    /// `RP_3G1` — 3-way replication, one group.
    pub const RP_3G1: ObjectClass = ObjectClass::Replicated {
        replicas: 3,
        groups: Some(1),
    };
    /// `EC_2P1GX` — 2+1 erasure coding, max groups.
    pub const EC_2P1GX: ObjectClass = ObjectClass::ErasureCoded {
        data: 2,
        parity: 1,
        groups: None,
    };
    /// `EC_4P2GX` — 4+2 erasure coding, max groups.
    pub const EC_4P2GX: ObjectClass = ObjectClass::ErasureCoded {
        data: 4,
        parity: 2,
        groups: None,
    };

    /// Parse the DAOS-style class name (`"S2"`, `"SX"`, `"RP_2GX"`, `"EC_2P1GX"`).
    pub fn parse(s: &str) -> Option<ObjectClass> {
        let s = s.trim().to_ascii_uppercase();
        if s == "SX" {
            return Some(ObjectClass::ShardedMax);
        }
        if let Some(n) = s.strip_prefix('S').and_then(|r| r.parse::<u16>().ok()) {
            return Some(ObjectClass::Sharded(n.max(1)));
        }
        if let Some(rest) = s.strip_prefix("RP_") {
            let (r, g) = rest.split_once('G')?;
            let replicas = r.parse::<u16>().ok()?;
            let groups = if g == "X" {
                None
            } else {
                Some(g.parse().ok()?)
            };
            return Some(ObjectClass::Replicated { replicas, groups });
        }
        if let Some(rest) = s.strip_prefix("EC_") {
            let (kp, g) = rest.split_once('G')?;
            let (k, p) = kp.split_once('P')?;
            let groups = if g == "X" {
                None
            } else {
                Some(g.parse().ok()?)
            };
            return Some(ObjectClass::ErasureCoded {
                data: k.parse().ok()?,
                parity: p.parse().ok()?,
                groups,
            });
        }
        None
    }

    /// Canonical class name.
    pub fn name(&self) -> String {
        match self {
            ObjectClass::Sharded(n) => format!("S{n}"),
            ObjectClass::ShardedMax => "SX".to_string(),
            ObjectClass::Replicated { replicas, groups } => match groups {
                Some(g) => format!("RP_{replicas}G{g}"),
                None => format!("RP_{replicas}GX"),
            },
            ObjectClass::ErasureCoded {
                data,
                parity,
                groups,
            } => match groups {
                Some(g) => format!("EC_{data}P{parity}G{g}"),
                None => format!("EC_{data}P{parity}GX"),
            },
        }
    }

    /// Number of cells (targets touched) per stripe group.
    pub fn group_width(&self) -> u32 {
        match self {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => 1,
            ObjectClass::Replicated { replicas, .. } => *replicas as u32,
            ObjectClass::ErasureCoded { data, parity, .. } => (*data + *parity) as u32,
        }
    }

    /// Total shard count in a pool with `targets` active targets.
    pub fn shard_count(&self, targets: u32) -> u32 {
        let groups = match self {
            ObjectClass::Sharded(n) => (*n as u32).min(targets),
            ObjectClass::ShardedMax => targets,
            ObjectClass::Replicated { groups, .. } | ObjectClass::ErasureCoded { groups, .. } => {
                let w = self.group_width();
                match groups {
                    Some(g) => (*g as u32).min((targets / w.max(1)).max(1)),
                    None => (targets / w.max(1)).max(1),
                }
            }
        };
        groups * self.group_width()
    }

    /// How many of the shards in each group carry distinct data (for
    /// bandwidth accounting): 1 for sharded and replication, k for EC.
    pub fn data_shards_per_group(&self) -> u32 {
        match self {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => 1,
            ObjectClass::Replicated { .. } => 1,
            ObjectClass::ErasureCoded { data, .. } => *data as u32,
        }
    }

    /// Write amplification factor of the protection scheme (bytes written to
    /// media per byte of application data).
    pub fn write_amplification(&self) -> f64 {
        match self {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => 1.0,
            ObjectClass::Replicated { replicas, .. } => *replicas as f64,
            ObjectClass::ErasureCoded { data, parity, .. } => {
                (*data as f64 + *parity as f64) / *data as f64
            }
        }
    }
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

// --------------------------------------------------------------- PoolMap

/// The pool's component tree, flattened: `engines × targets_per_engine`
/// targets, with an exclusion set for failed/rebuilding targets.
#[derive(Clone, Debug)]
pub struct PoolMap {
    engines: u32,
    targets_per_engine: u32,
    excluded: BTreeSet<TargetId>,
    version: u32,
}

impl PoolMap {
    /// A healthy map with `engines × targets_per_engine` targets.
    pub fn new(engines: u32, targets_per_engine: u32) -> Self {
        assert!(engines > 0 && targets_per_engine > 0);
        PoolMap {
            engines,
            targets_per_engine,
            excluded: BTreeSet::new(),
            version: 1,
        }
    }

    /// Total target slots (including excluded).
    pub fn target_count(&self) -> u32 {
        self.engines * self.targets_per_engine
    }
    /// Targets currently active.
    pub fn active_target_count(&self) -> u32 {
        self.target_count() - self.excluded.len() as u32
    }
    /// Number of engines.
    pub fn engine_count(&self) -> u32 {
        self.engines
    }
    /// Targets per engine.
    pub fn targets_per_engine(&self) -> u32 {
        self.targets_per_engine
    }
    /// Map version (bumped on every exclusion).
    pub fn version(&self) -> u32 {
        self.version
    }
    /// The engine hosting `target`.
    pub fn engine_of(&self, target: TargetId) -> u32 {
        target / self.targets_per_engine
    }
    /// Whether `target` is excluded.
    pub fn is_excluded(&self, target: TargetId) -> bool {
        self.excluded.contains(&target)
    }

    /// Exclude a target (failure / administrative drain); bumps the version.
    pub fn exclude(&mut self, target: TargetId) {
        assert!(target < self.target_count());
        if self.excluded.insert(target) {
            self.version += 1;
        }
    }

    /// Re-activate a target (rebuild complete / reintegration).
    pub fn reintegrate(&mut self, target: TargetId) {
        if self.excluded.remove(&target) {
            self.version += 1;
        }
    }

    /// Active target ids in order.
    pub fn active_targets(&self) -> Vec<TargetId> {
        (0..self.target_count())
            .filter(|t| !self.excluded.contains(t))
            .collect()
    }

    /// Currently excluded target ids in order.
    pub fn excluded_targets(&self) -> Vec<TargetId> {
        self.excluded.iter().copied().collect()
    }

    /// Number of active targets on `engine`.
    pub fn active_targets_on_engine(&self, engine: u32) -> u32 {
        let base = engine * self.targets_per_engine;
        (base..base + self.targets_per_engine)
            .filter(|t| !self.excluded.contains(t))
            .count() as u32
    }

    /// Adopt an authoritative `(version, excluded)` snapshot from the pool
    /// service. Applied only if `version` is newer than the local one (so a
    /// refresh never rolls back local administrative exclusions); returns
    /// whether the map changed.
    pub fn sync(&mut self, version: u32, excluded: &[TargetId]) -> bool {
        if version <= self.version {
            return false;
        }
        self.excluded = excluded.iter().copied().collect();
        self.version = version;
        true
    }
}

// ---------------------------------------------------------------- Layout

/// A computed object layout: shard `i` lives on `shards[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    pub class: ObjectClass,
    pub shards: Vec<TargetId>,
}

impl Layout {
    /// Target of shard `i`.
    pub fn target_of(&self, shard: u32) -> TargetId {
        self.shards[shard as usize % self.shards.len()]
    }
    /// Number of shards.
    pub fn width(&self) -> u32 {
        self.shards.len() as u32
    }
    /// Distinct engines covered (fan-out a client sees), given the map.
    pub fn engine_fanout(&self, map: &PoolMap) -> usize {
        self.shards
            .iter()
            .map(|&t| map.engine_of(t))
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// The shard count [`place`] will produce for `class` on `map`.
///
/// Sharded classes scale with the *active* target count; protected classes
/// (`RP_n`, `EC_k+p`) compute their group count from the *total* target
/// count, so their width — and the data addressed by each `(group, replica)`
/// slot — stays stable across exclusions and reintegrations. Without that
/// stability an exclusion would silently regroup every stripe.
pub fn place_width(class: ObjectClass, map: &PoolMap) -> u32 {
    match class {
        ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
            class.shard_count(map.active_target_count())
        }
        ObjectClass::Replicated { .. } | ObjectClass::ErasureCoded { .. } => {
            class.shard_count(map.target_count())
        }
    }
}

/// Compute the deterministic layout of `oid` with `class` on `map`.
///
/// Sharded classes draw without replacement from the active targets using a
/// rejection-sampled prefix seeded by the object id — deterministic,
/// uniformly balanced *in expectation*, with per-object variance exactly
/// like a real hash-placed store. When the class needs more shards than
/// there are targets, placement wraps (shards co-reside).
///
/// Protected classes (`RP_n`, `EC_k+p`) are placed *fault-domain-aware*:
/// each group's cells land on distinct engines whenever enough engines have
/// active targets, so a single engine crash never takes out a whole
/// replica group — the invariant degraded reads and rebuild depend on.
pub fn place(oid: ObjectId, class: ObjectClass, map: &PoolMap) -> Layout {
    let n_active = map.active_target_count();
    assert!(n_active > 0, "no active targets");
    if matches!(
        class,
        ObjectClass::Replicated { .. } | ObjectClass::ErasureCoded { .. }
    ) {
        return place_protected(oid, class, map);
    }
    let want = class.shard_count(n_active);
    let total = map.target_count() as u64;

    // xorshift-style PRNG seeded from the object id; cheap and deterministic
    let mut state = oid.mix() | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    if want >= n_active {
        // wide classes (SX and friends): every active target, rotated by the
        // object id so shard 0 still varies per object; wraps if want > n.
        let active = map.active_targets();
        let rot = (next() % n_active as u64) as usize;
        let shards = (0..want as usize)
            .map(|i| active[(rot + i) % active.len()])
            .collect();
        return Layout { class, shards };
    }

    // Rejection sampling over *stable slot ids*: excluding one target only
    // relocates layouts that actually used it (consistent-hashing churn).
    let mut shards: Vec<TargetId> = Vec::with_capacity(want as usize);
    let mut attempts = 0u32;
    while (shards.len() as u32) < want {
        let cand = (next() % total) as TargetId;
        attempts += 1;
        if attempts > 64 * want.max(8) {
            // pathological exclusion pattern: fill from remaining actives
            for t in map.active_targets() {
                if (shards.len() as u32) == want {
                    break;
                }
                if !shards.contains(&t) {
                    shards.push(t);
                }
            }
            break;
        }
        if map.is_excluded(cand) || shards.contains(&cand) {
            continue;
        }
        shards.push(cand);
    }
    Layout { class, shards }
}

/// Fault-domain-aware placement for `RP_n` / `EC_k+p`: per group, cells on
/// distinct engines (reusing engines only when fewer live engines than
/// cells exist) and distinct targets within the group.
///
/// Two passes, CRUSH-style. Pass 1 places every cell against the *healthy*
/// geometry — exclusions ignored — from its own `(oid, group, cell)`-seeded
/// stream, so the healthy layout never depends on the current map. Pass 2
/// re-draws only the cells whose pass-1 target is excluded. A cell on a
/// live target therefore never moves — the minimal-churn property that
/// bounds rebuild volume and guarantees every degraded group keeps its
/// surviving cells as rebuild donors.
fn place_protected(oid: ObjectId, class: ObjectClass, map: &PoolMap) -> Layout {
    let width = class.group_width();
    let groups = place_width(class, map) / width;
    let tpe = map.targets_per_engine();
    let engine_total = map.engine_count();
    // engines that can still host a cell
    let live: Vec<u32> = (0..engine_total)
        .filter(|&e| map.active_targets_on_engine(e) > 0)
        .collect();
    assert!(!live.is_empty(), "no active targets");

    let stream = |g: u32, c: u32, salt: u64| {
        let mut state = splitmix64(
            oid.mix()
                ^ salt
                ^ (g as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (c as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        ) | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    };

    let mut shards: Vec<TargetId> = Vec::with_capacity((groups * width) as usize);
    for g in 0..groups {
        // ---- pass 1: healthy placement, blind to exclusions
        let mut group_engines: Vec<u32> = Vec::with_capacity(width as usize);
        let mut group_targets: Vec<TargetId> = Vec::with_capacity(width as usize);
        for c in 0..width {
            let mut next = stream(g, c, 0);
            // Rejection-sample an engine over stable engine ids, skipping
            // engines already holding a cell of this group (repeats allowed
            // only once every engine is in the group).
            let fresh_left = (0..engine_total).any(|e| !group_engines.contains(&e));
            let mut attempts = 0u32;
            let engine = loop {
                attempts += 1;
                if attempts > 64 * width.max(4) {
                    // pathological pattern: first acceptable engine in order
                    break (0..engine_total)
                        .find(|e| !fresh_left || !group_engines.contains(e))
                        .unwrap_or((next() % engine_total as u64) as u32);
                }
                let cand = (next() % engine_total as u64) as u32;
                if fresh_left && group_engines.contains(&cand) {
                    continue;
                }
                break cand;
            };
            group_engines.push(engine);

            // One draw for the in-engine slot, then a deterministic scan:
            // first target from the drawn offset not already in the group,
            // falling back to reuse when all are taken.
            let base = next() % tpe as u64;
            let slot = |off: u64| engine * tpe + ((base + off) % tpe as u64) as u32;
            let pick = (0..tpe as u64)
                .map(slot)
                .find(|t| !group_targets.contains(t))
                .unwrap_or_else(|| slot(0));
            group_targets.push(pick);
        }

        // ---- pass 2: re-draw only the cells that landed on excluded
        // targets, around the cells that stay put
        for c in 0..width {
            if !map.is_excluded(group_targets[c as usize]) {
                continue;
            }
            let mut next = stream(g, c, 0x7EBA_11D5_0C0F_FEE5);
            let used = |e: u32, gt: &[TargetId]| {
                gt.iter()
                    .enumerate()
                    .any(|(i, &t)| i != c as usize && !map.is_excluded(t) && t / tpe == e)
            };
            let fresh_left = live.iter().any(|&e| !used(e, &group_targets));
            let mut attempts = 0u32;
            let engine = loop {
                attempts += 1;
                if attempts > 64 * width.max(4) {
                    break live
                        .iter()
                        .copied()
                        .find(|&e| !fresh_left || !used(e, &group_targets))
                        .unwrap_or(live[(next() % live.len() as u64) as usize]);
                }
                let cand = (next() % engine_total as u64) as u32;
                if map.active_targets_on_engine(cand) == 0
                    || (fresh_left && used(cand, &group_targets))
                {
                    continue;
                }
                break cand;
            };
            let base = next() % tpe as u64;
            let slot = |off: u64| engine * tpe + ((base + off) % tpe as u64) as u32;
            let pick = (0..tpe as u64)
                .map(slot)
                .find(|t| !map.is_excluded(*t) && !group_targets.contains(t))
                .or_else(|| (0..tpe as u64).map(slot).find(|t| !map.is_excluded(*t)))
                // INVARIANT: the candidate loop above skipped engines with
                // zero active targets, so at least one slot is not excluded.
                .expect("live engine must have an active target");
            group_targets[c as usize] = pick;
        }
        shards.extend_from_slice(&group_targets);
    }
    Layout { class, shards }
}

/// Per-target shard-count statistics over a set of layouts: returns
/// `(mean, stddev, max)` of the per-target load (for balance assertions and
/// the oclass ablation bench).
pub fn load_spread(layouts: &[Layout], map: &PoolMap) -> (f64, f64, u64) {
    let mut counts = vec![0u64; map.target_count() as usize];
    for l in layouts {
        for &t in &l.shards {
            counts[t as usize] += 1;
        }
    }
    let n = map.active_target_count() as f64;
    let total: u64 = counts.iter().sum();
    let mean = total as f64 / n;
    let var = counts
        .iter()
        .enumerate()
        .filter(|(t, _)| !map.is_excluded(*t as TargetId))
        .map(|(_, &c)| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let max = counts.iter().copied().max().unwrap_or(0);
    (mean, var.sqrt(), max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map16x8() -> PoolMap {
        PoolMap::new(16, 8)
    }

    #[test]
    fn class_parsing_round_trips() {
        for name in [
            "S1", "S2", "S4", "S8", "SX", "RP_2GX", "RP_3G1", "EC_2P1GX", "EC_4P2G4",
        ] {
            let c = ObjectClass::parse(name).unwrap();
            assert_eq!(c.name(), name);
        }
        assert_eq!(ObjectClass::parse("garbage"), None);
    }

    #[test]
    fn shard_counts() {
        let t = 128;
        assert_eq!(ObjectClass::S1.shard_count(t), 1);
        assert_eq!(ObjectClass::S2.shard_count(t), 2);
        assert_eq!(ObjectClass::SX.shard_count(t), 128);
        assert_eq!(ObjectClass::RP_3G1.shard_count(t), 3);
        assert_eq!(ObjectClass::RP_2GX.shard_count(t), 128);
        assert_eq!(ObjectClass::EC_2P1GX.shard_count(t), 126); // 42 groups * 3
                                                               // small pool clamps
        assert_eq!(ObjectClass::Sharded(8).shard_count(4), 4);
    }

    #[test]
    fn write_amplification() {
        assert_eq!(ObjectClass::S2.write_amplification(), 1.0);
        assert_eq!(ObjectClass::RP_2GX.write_amplification(), 2.0);
        assert!((ObjectClass::EC_4P2GX.write_amplification() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn placement_is_deterministic() {
        let map = map16x8();
        let oid = ObjectId::new(7, 42);
        let a = place(oid, ObjectClass::S4, &map);
        let b = place(oid, ObjectClass::S4, &map);
        assert_eq!(a, b);
    }

    #[test]
    fn placement_distinct_targets_when_possible() {
        let map = map16x8();
        for i in 0..100u64 {
            let l = place(ObjectId::new(i, i * 31), ObjectClass::S8, &map);
            let set: BTreeSet<_> = l.shards.iter().collect();
            assert_eq!(set.len(), 8, "S8 shards must land on distinct targets");
        }
    }

    #[test]
    fn sx_covers_every_active_target() {
        let map = map16x8();
        let l = place(ObjectId::new(1, 2), ObjectClass::SX, &map);
        assert_eq!(l.width(), 128);
        let set: BTreeSet<_> = l.shards.iter().collect();
        assert_eq!(set.len(), 128);
        assert_eq!(l.engine_fanout(&map), 16);
    }

    #[test]
    fn balance_improves_with_sharding() {
        // the statistical heart of the paper's S1/S2/SX result
        let map = map16x8();
        let layouts = |c: ObjectClass| -> Vec<Layout> {
            (0..512u64)
                .map(|i| place(ObjectId::new(i, splitmix64(i)), c, &map))
                .collect()
        };
        // compare *relative* imbalance (per unit of data): with w-way
        // sharding each shard carries 1/w of a file, so normalise by mean
        let (m1, sd1, max1) = load_spread(&layouts(ObjectClass::S1), &map);
        let (m2, sd2, max2) = load_spread(&layouts(ObjectClass::S2), &map);
        let (mx, sdx, maxx) = load_spread(&layouts(ObjectClass::SX), &map);
        let (cv1, cv2, cvx) = (sd1 / m1, sd2 / m2, sdx / mx);
        assert!(cv2 < cv1, "S2 relative spread {cv2} should beat S1 {cv1}");
        assert!(cvx < 1e-9, "SX must be perfectly balanced, got {cvx}");
        let (r1, r2, rx) = (max1 as f64 / m1, max2 as f64 / m2, maxx as f64 / mx);
        assert!(rx <= r2 && r2 <= r1, "max/mean must shrink: {r1} {r2} {rx}");
    }

    #[test]
    fn exclusion_remaps_only_affected_shards_mostly() {
        let mut map = map16x8();
        let oids: Vec<ObjectId> = (0..200).map(|i| ObjectId::new(i, i + 1)).collect();
        let before: Vec<Layout> = oids
            .iter()
            .map(|&o| place(o, ObjectClass::S1, &map))
            .collect();
        map.exclude(5);
        let after: Vec<Layout> = oids
            .iter()
            .map(|&o| place(o, ObjectClass::S1, &map))
            .collect();
        let mut moved = 0;
        for (b, a) in before.iter().zip(&after) {
            assert_ne!(a.shards[0], 5, "excluded target must not be used");
            if b.shards[0] != a.shards[0] {
                moved += 1;
            }
        }
        // only objects that touched target 5 (≈ 200/128) plus modest churn
        // from index shifts should move
        assert!(moved < 40, "too much churn after one exclusion: {moved}");
    }

    #[test]
    fn jump_hash_ranges_and_monotonicity() {
        for key in 0..500u64 {
            let b = jump_consistent_hash(key, 10);
            assert!(b < 10);
            // growing bucket count only moves keys to NEW buckets
            let b11 = jump_consistent_hash(key, 11);
            assert!(b11 == b || b11 == 10, "key {key}: {b} -> {b11}");
        }
    }

    #[test]
    fn jump_hash_is_balanced() {
        let n = 16u32;
        let mut counts = vec![0u32; n as usize];
        for key in 0..16_000u64 {
            counts[jump_consistent_hash(splitmix64(key), n) as usize] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 800 && max < 1200, "min {min} max {max}");
    }

    #[test]
    fn pool_map_versioning() {
        let mut m = PoolMap::new(2, 4);
        assert_eq!(m.version(), 1);
        m.exclude(3);
        assert_eq!(m.version(), 2);
        assert_eq!(m.active_target_count(), 7);
        m.exclude(3); // idempotent
        assert_eq!(m.version(), 2);
        m.reintegrate(3);
        assert_eq!(m.version(), 3);
        assert_eq!(m.active_target_count(), 8);
    }

    #[test]
    fn protected_groups_span_engines() {
        // the fault-domain invariant: no replica group confined to one engine
        let map = PoolMap::new(4, 4);
        for i in 0..200u64 {
            let oid = ObjectId::new(i, splitmix64(i));
            for class in [
                ObjectClass::RP_2GX,
                ObjectClass::RP_3G1,
                ObjectClass::EC_2P1GX,
            ] {
                let l = place(oid, class, &map);
                let w = class.group_width() as usize;
                for (g, group) in l.shards.chunks(w).enumerate() {
                    let engines: BTreeSet<_> = group.iter().map(|&t| map.engine_of(t)).collect();
                    assert_eq!(
                        engines.len(),
                        w.min(4),
                        "{class} group {g} of oid {i} not engine-disjoint: {group:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn protected_width_stable_under_exclusion() {
        let mut map = PoolMap::new(4, 4);
        let oids: Vec<ObjectId> = (0..100).map(|i| ObjectId::new(i, i * 7 + 1)).collect();
        let before: Vec<Layout> = oids
            .iter()
            .map(|&o| place(o, ObjectClass::RP_2GX, &map))
            .collect();
        // crash engine 1: exclude all its targets
        for t in 4..8 {
            map.exclude(t);
        }
        let mut moved = 0usize;
        let mut cells = 0usize;
        for (o, b) in oids.iter().zip(&before) {
            let a = place(*o, ObjectClass::RP_2GX, &map);
            assert_eq!(a.width(), b.width(), "group structure must not change");
            for (i, (&tb, &ta)) in b.shards.iter().zip(&a.shards).enumerate() {
                cells += 1;
                assert!(!map.is_excluded(ta), "shard {i} on excluded target {ta}");
                if tb != ta {
                    moved += 1;
                    // relocations land off the dead engine; survivors stay
                    assert_ne!(map.engine_of(ta), 1);
                }
            }
        }
        // 1 of 4 engines died: ~1/4 of cells relocate, the rest must not
        assert!(
            moved * 2 < cells,
            "exclusion churned {moved}/{cells} protected cells"
        );
        assert!(moved > 0, "dead engine's cells must relocate");
    }

    #[test]
    fn rp2_always_leaves_a_survivor_per_group() {
        let map = PoolMap::new(4, 4);
        for i in 0..200u64 {
            let l = place(ObjectId::new(i, i + 3), ObjectClass::RP_2GX, &map);
            for crashed in 0..4u32 {
                for group in l.shards.chunks(2) {
                    assert!(
                        group.iter().any(|&t| map.engine_of(t) != crashed),
                        "group {group:?} wiped out by engine {crashed}"
                    );
                }
            }
        }
    }

    #[test]
    fn place_width_matches_place() {
        let mut map = PoolMap::new(3, 5);
        let classes = [
            ObjectClass::S1,
            ObjectClass::S8,
            ObjectClass::SX,
            ObjectClass::RP_2GX,
            ObjectClass::RP_3G1,
            ObjectClass::EC_2P1GX,
            ObjectClass::EC_4P2GX,
        ];
        for step in 0..3 {
            for class in classes {
                let l = place(ObjectId::new(7, step as u64 * 31 + 1), class, &map);
                assert_eq!(l.width(), place_width(class, &map), "{class} step {step}");
            }
            map.exclude(step * 4);
        }
    }

    #[test]
    fn pool_map_sync_is_version_guarded() {
        let mut m = PoolMap::new(2, 4);
        m.exclude(1); // local admin exclusion: version 2
        assert!(!m.sync(2, &[]), "same version must not roll back");
        assert!(m.is_excluded(1));
        assert!(m.sync(5, &[3, 4]));
        assert_eq!(m.version(), 5);
        assert!(!m.is_excluded(1));
        assert!(m.is_excluded(3) && m.is_excluded(4));
    }

    #[test]
    fn wrapped_placement_when_class_exceeds_targets() {
        let map = PoolMap::new(1, 2);
        let l = place(
            ObjectId::new(9, 9),
            ObjectClass::Replicated {
                replicas: 3,
                groups: Some(2),
            },
            &map,
        );
        // groups clamp to 1 on a 2-target pool; 3 replicas wrap 2 targets
        assert_eq!(l.width(), 3);
        let distinct: BTreeSet<_> = l.shards.iter().collect();
        assert_eq!(distinct.len(), 2, "both targets used, one reused");
    }
}
