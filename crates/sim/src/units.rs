//! Byte-size and bandwidth units shared across the stack.

/// 1 KiB in bytes.
pub const KIB: u64 = 1 << 10;
/// 1 MiB in bytes.
pub const MIB: u64 = 1 << 20;
/// 1 GiB in bytes.
pub const GIB: u64 = 1 << 30;
/// 1 TiB in bytes.
pub const TIB: u64 = 1 << 40;

/// A transfer rate in bytes per (simulated) second.
///
/// Stored as a float rate; conversions to per-byte costs round *up* so a
/// finite bandwidth never yields a free transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    #[inline]
    pub fn bytes_per_sec(b: f64) -> Self {
        assert!(b > 0.0, "bandwidth must be positive");
        Bandwidth(b)
    }
    #[inline]
    pub fn mib_per_sec(m: f64) -> Self {
        Self::bytes_per_sec(m * MIB as f64)
    }
    #[inline]
    pub fn gib_per_sec(g: f64) -> Self {
        Self::bytes_per_sec(g * GIB as f64)
    }
    /// Gigabits per second (network convention), e.g. `Bandwidth::gbit_per_sec(100.0)`.
    #[inline]
    pub fn gbit_per_sec(g: f64) -> Self {
        Self::bytes_per_sec(g * 1e9 / 8.0)
    }
    /// Nanoseconds to move `bytes` at this rate, rounded up.
    #[inline]
    pub fn ns_for(self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 * 1e9 / self.0).ceil() as u64
    }
    #[inline]
    pub fn as_gib_per_sec(self) -> f64 {
        self.0 / GIB as f64
    }
}

/// Render a byte count with a binary-unit suffix (`4.0KiB`, `1.5GiB`, ...).
pub fn fmt_bytes(b: u64) -> String {
    if b >= TIB {
        format!("{:.1}TiB", b as f64 / TIB as f64)
    } else if b >= GIB {
        format!("{:.1}GiB", b as f64 / GIB as f64)
    } else if b >= MIB {
        format!("{:.1}MiB", b as f64 / MIB as f64)
    } else if b >= KIB {
        format!("{:.1}KiB", b as f64 / KIB as f64)
    } else {
        format!("{b}B")
    }
}

/// Bandwidth from a byte count and elapsed seconds, in GiB/s.
#[inline]
pub fn gib_per_sec(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 / GIB as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let bw = Bandwidth::gib_per_sec(1.0);
        assert_eq!(bw.ns_for(GIB), 1_000_000_000);
        assert_eq!(bw.ns_for(0), 0);
        // rounds up: 1 byte at 1 GiB/s is < 1ns but must cost 1ns
        assert_eq!(bw.ns_for(1), 1);
        let net = Bandwidth::gbit_per_sec(100.0);
        // 100 Gb/s = 12.5 GB/s -> 1 GiB takes ~85.9 ms
        let ns = net.ns_for(GIB);
        assert!((85_000_000..87_000_000).contains(&ns), "{ns}");
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4 * KIB), "4.0KiB");
        assert_eq!(fmt_bytes(3 * MIB / 2), "1.5MiB");
        assert_eq!(fmt_bytes(GIB), "1.0GiB");
        assert_eq!(fmt_bytes(2 * TIB), "2.0TiB");
    }

    #[test]
    fn gib_per_sec_guard() {
        assert_eq!(gib_per_sec(GIB, 0.0), 0.0);
        assert!((gib_per_sec(2 * GIB, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }
}
