//! Byte-size and bandwidth units shared across the stack.
//!
//! Besides the raw constants and [`Bandwidth`], this module is the
//! *blessed conversion boundary* for the simlint U01 unit-safety rule:
//! the [`Bytes`] / [`Nanos`] / [`Gibps`] newtypes carry their unit in
//! the type, and every cross-unit cast in the workspace is supposed to
//! route through here. The typed entry points delegate to the exact
//! same float operations as their raw twins ([`Bandwidth::ns_for`],
//! [`Bandwidth::as_gib_per_sec`]), so converting a call site is
//! bit-identical — the committed bench baselines prove it.

use crate::time::SimDuration;

/// 1 KiB in bytes.
pub const KIB: u64 = 1 << 10;
/// 1 MiB in bytes.
pub const MIB: u64 = 1 << 20;
/// 1 GiB in bytes.
pub const GIB: u64 = 1 << 30;
/// 1 TiB in bytes.
pub const TIB: u64 = 1 << 40;

/// A transfer rate in bytes per (simulated) second.
///
/// Stored as a float rate; conversions to per-byte costs round *up* so a
/// finite bandwidth never yields a free transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    #[inline]
    pub fn bytes_per_sec(b: f64) -> Self {
        assert!(b > 0.0, "bandwidth must be positive");
        Bandwidth(b)
    }
    #[inline]
    pub fn mib_per_sec(m: f64) -> Self {
        Self::bytes_per_sec(m * MIB as f64)
    }
    #[inline]
    pub fn gib_per_sec(g: f64) -> Self {
        Self::bytes_per_sec(g * GIB as f64)
    }
    /// Gigabits per second (network convention), e.g. `Bandwidth::gbit_per_sec(100.0)`.
    #[inline]
    pub fn gbit_per_sec(g: f64) -> Self {
        Self::bytes_per_sec(g * 1e9 / 8.0)
    }
    /// Nanoseconds to move `bytes` at this rate, rounded up.
    #[inline]
    pub fn ns_for(self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 * 1e9 / self.0).ceil() as u64
    }
    #[inline]
    pub fn as_gib_per_sec(self) -> f64 {
        self.0 / GIB as f64
    }
    /// Typed twin of [`Bandwidth::ns_for`]: time to move `bytes` at
    /// this rate. Same arithmetic, units carried in the types.
    #[inline]
    pub fn ns_for_bytes(self, bytes: Bytes) -> Nanos {
        Nanos(self.ns_for(bytes.0))
    }
    /// This rate as a typed GiB/s scalar.
    #[inline]
    pub fn as_gibps(self) -> Gibps {
        Gibps(self.as_gib_per_sec())
    }
}

/// A byte count whose unit is carried by the type.
///
/// Thin wrapper over `u64` — construction and extraction are free, and
/// arithmetic goes through the wrapped integer, so routing a call site
/// through [`Bytes`] cannot change its value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(pub u64);

impl Bytes {
    /// The raw byte count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&fmt_bytes(self.0))
    }
}

/// A span of simulated nanoseconds whose unit is carried by the type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The raw nanosecond count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
    /// As a [`SimDuration`] for sleeping / deadline arithmetic.
    #[inline]
    pub fn dur(self) -> SimDuration {
        SimDuration::from_ns(self.0)
    }
}

/// A rate in GiB per second whose unit is carried by the type.
///
/// [`Gibps::bandwidth`] and [`Gibps::from_bytes_per_sec`] delegate to
/// the same operations as the raw [`Bandwidth`] constructors, so the
/// typed route is bit-identical to the cast it replaces.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Gibps(pub f64);

impl Gibps {
    /// Into a [`Bandwidth`] (bytes/sec) for the pipe model.
    #[inline]
    pub fn bandwidth(self) -> Bandwidth {
        Bandwidth::gib_per_sec(self.0)
    }
    /// Typed twin of `bps / GIB as f64` — no positivity assert, so a
    /// zero offered load renders as `0.0` rather than panicking.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Gibps {
        Gibps(bps / GIB as f64)
    }
}

impl From<Bandwidth> for Gibps {
    fn from(bw: Bandwidth) -> Gibps {
        bw.as_gibps()
    }
}

/// Render a byte count with a binary-unit suffix (`4.0KiB`, `1.5GiB`, ...).
pub fn fmt_bytes(b: u64) -> String {
    if b >= TIB {
        format!("{:.1}TiB", b as f64 / TIB as f64)
    } else if b >= GIB {
        format!("{:.1}GiB", b as f64 / GIB as f64)
    } else if b >= MIB {
        format!("{:.1}MiB", b as f64 / MIB as f64)
    } else if b >= KIB {
        format!("{:.1}KiB", b as f64 / KIB as f64)
    } else {
        format!("{b}B")
    }
}

/// Bandwidth from a byte count and elapsed seconds, in GiB/s.
#[inline]
pub fn gib_per_sec(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 / GIB as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let bw = Bandwidth::gib_per_sec(1.0);
        assert_eq!(bw.ns_for(GIB), 1_000_000_000);
        assert_eq!(bw.ns_for(0), 0);
        // rounds up: 1 byte at 1 GiB/s is < 1ns but must cost 1ns
        assert_eq!(bw.ns_for(1), 1);
        let net = Bandwidth::gbit_per_sec(100.0);
        // 100 Gb/s = 12.5 GB/s -> 1 GiB takes ~85.9 ms
        let ns = net.ns_for(GIB);
        assert!((85_000_000..87_000_000).contains(&ns), "{ns}");
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4 * KIB), "4.0KiB");
        assert_eq!(fmt_bytes(3 * MIB / 2), "1.5MiB");
        assert_eq!(fmt_bytes(GIB), "1.0GiB");
        assert_eq!(fmt_bytes(2 * TIB), "2.0TiB");
    }

    #[test]
    fn gib_per_sec_guard() {
        assert_eq!(gib_per_sec(GIB, 0.0), 0.0);
        assert!((gib_per_sec(2 * GIB, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn typed_routes_are_bit_identical_to_raw_casts() {
        // the newtype path must produce the exact bits of the raw path
        for g in [0.0625, 1.0, 3.2, 9.0, 20.0, 30.0, 80.0] {
            assert_eq!(
                Gibps(g).bandwidth().0.to_bits(),
                Bandwidth::bytes_per_sec(g * GIB as f64).0.to_bits()
            );
        }
        let bw = Bandwidth::gbit_per_sec(100.0);
        for b in [0u64, 1, 4096, GIB, 7 * GIB + 13] {
            assert_eq!(bw.ns_for_bytes(Bytes(b)).get(), bw.ns_for(b));
        }
        for bps in [0.0, 1.5e9, 80.0 * GIB as f64] {
            assert_eq!(
                Gibps::from_bytes_per_sec(bps).0.to_bits(),
                (bps / GIB as f64).to_bits()
            );
        }
        assert_eq!(Gibps::from(bw).0.to_bits(), bw.as_gib_per_sec().to_bits());
        assert_eq!(Nanos(1234).dur(), SimDuration::from_ns(1234));
        assert_eq!(format!("{}", Bytes(4 * KIB)), "4.0KiB");
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }
}
