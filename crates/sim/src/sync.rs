//! Intra-simulation synchronisation: oneshot channels, mailboxes and a FIFO
//! semaphore.
//!
//! All of these are single-threaded (`Rc`-based) — they synchronise *virtual*
//! concurrency between tasks of one `Sim`, not host threads.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned when the other half of a channel was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed")
    }
}
impl std::error::Error for Closed {}

// ---------------------------------------------------------------- oneshot

struct OneshotShared<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Sending half of a oneshot channel (RPC reply slot).
pub struct OneshotSender<T> {
    shared: Rc<RefCell<OneshotShared<T>>>,
}

/// Receiving half of a oneshot channel; a `Future` yielding the value.
pub struct OneshotReceiver<T> {
    shared: Rc<RefCell<OneshotShared<T>>>,
}

/// Create a oneshot channel. The receiver future resolves when the sender
/// sends, or to `Err(Closed)` if the sender is dropped first.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let shared = Rc::new(RefCell::new(OneshotShared {
        value: None,
        waker: None,
        sender_alive: true,
    }));
    (
        OneshotSender {
            shared: Rc::clone(&shared),
        },
        OneshotReceiver { shared },
    )
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver. Consumes the sender.
    pub fn send(self, value: T) {
        let mut sh = self.shared.borrow_mut();
        sh.value = Some(value);
        if let Some(w) = sh.waker.take() {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut sh = self.shared.borrow_mut();
        sh.sender_alive = false;
        if let Some(w) = sh.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, Closed>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut sh = self.shared.borrow_mut();
        if let Some(v) = sh.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !sh.sender_alive {
            return Poll::Ready(Err(Closed));
        }
        sh.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------- mailbox

struct MailboxShared<T> {
    queue: VecDeque<T>,
    // every waiting consumer; all are woken on send and race to pop
    wakers: Vec<Waker>,
    senders: usize,
    closed: bool,
}

/// Unbounded multi-producer multi-consumer queue.
///
/// The standard way to model a server: producers `send` requests, a pool of
/// worker tasks loops on `recv`. `recv` resolves to `None` once the mailbox
/// is closed (explicitly or because every sender handle was dropped) *and*
/// drained.
pub struct Mailbox<T> {
    shared: Rc<RefCell<MailboxShared<T>>>,
    is_sender: bool,
}

impl<T> Mailbox<T> {
    /// Create an empty mailbox. The returned handle counts as one sender.
    pub fn new() -> Self {
        Mailbox {
            shared: Rc::new(RefCell::new(MailboxShared {
                queue: VecDeque::new(),
                wakers: Vec::new(),
                senders: 1,
                closed: false,
            })),
            is_sender: true,
        }
    }

    /// Enqueue an item and wake waiting consumers.
    pub fn send(&self, item: T) {
        let mut sh = self.shared.borrow_mut();
        assert!(!sh.closed, "send on closed mailbox");
        sh.queue.push_back(item);
        for w in sh.wakers.drain(..) {
            w.wake();
        }
    }

    /// Receive the next item; `None` after close-and-drain.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv { mailbox: self }
    }

    /// Pop without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.shared.borrow_mut().queue.pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }
    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the mailbox: consumers drain the backlog then see `None`.
    pub fn close(&self) {
        let mut sh = self.shared.borrow_mut();
        sh.closed = true;
        for w in sh.wakers.drain(..) {
            w.wake();
        }
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        self.shared.borrow_mut().senders += 1;
        Mailbox {
            shared: Rc::clone(&self.shared),
            is_sender: true,
        }
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        if self.is_sender {
            let mut sh = self.shared.borrow_mut();
            sh.senders -= 1;
            if sh.senders == 0 {
                sh.closed = true;
                for w in sh.wakers.drain(..) {
                    w.wake();
                }
            }
        }
    }
}

/// Future returned by [`Mailbox::recv`].
pub struct Recv<'a, T> {
    mailbox: &'a Mailbox<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut sh = self.mailbox.shared.borrow_mut();
        if let Some(v) = sh.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if sh.closed {
            return Poll::Ready(None);
        }
        sh.wakers.push(cx.waker().clone());
        Poll::Pending
    }
}

// -------------------------------------------------------------- semaphore

struct SemInner {
    permits: Cell<usize>,
    // FIFO queue of (ticket, want); strict ordering, no barging
    waiters: RefCell<VecDeque<WaitEnt>>,
    next_ticket: Cell<u64>,
}

struct WaitEnt {
    ticket: u64,
    want: usize,
    waker: Option<Waker>,
}

/// A strict-FIFO counting semaphore.
///
/// Models bounded service concurrency (FUSE daemon threads, engine
/// xstreams, NVMe queue depth). Waiters are served in arrival order even
/// when a later, smaller request could be satisfied first — matching a FIFO
/// request queue rather than a work-conserving allocator.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<SemInner>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initially available slots.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(SemInner {
                permits: Cell::new(permits),
                waiters: RefCell::new(VecDeque::new()),
                next_ticket: Cell::new(0),
            }),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.inner.permits.get()
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.inner.waiters.borrow().len()
    }

    /// Acquire one permit.
    pub fn acquire(&self) -> Acquire {
        self.acquire_n(1)
    }

    /// Acquire `n` permits atomically (FIFO, head-of-line blocking).
    pub fn acquire_n(&self, n: usize) -> Acquire {
        let ticket = self.inner.next_ticket.get();
        self.inner.next_ticket.set(ticket + 1);
        Acquire {
            sem: self.clone(),
            want: n,
            ticket,
            queued: false,
            done: false,
        }
    }

    fn release(&self, n: usize) {
        self.inner.permits.set(self.inner.permits.get() + n);
        self.wake_head();
    }

    fn wake_head(&self) {
        let mut ws = self.inner.waiters.borrow_mut();
        if let Some(head) = ws.front_mut() {
            if self.inner.permits.get() >= head.want {
                if let Some(w) = head.waker.take() {
                    w.wake();
                }
            }
        }
    }
}

/// Future returned by [`Semaphore::acquire`]; resolves to a guard that
/// releases the permits when dropped.
pub struct Acquire {
    sem: Semaphore,
    want: usize,
    ticket: u64,
    queued: bool,
    done: bool,
}

impl Future for Acquire {
    type Output = SemaphorePermit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let inner = Rc::clone(&self.sem.inner);
        let mut ws = inner.waiters.borrow_mut();
        let at_head = ws.front().map(|w| w.ticket) == Some(self.ticket);
        let eligible = if self.queued { at_head } else { ws.is_empty() };
        if eligible && inner.permits.get() >= self.want {
            inner.permits.set(inner.permits.get() - self.want);
            if self.queued {
                ws.pop_front();
            }
            drop(ws);
            self.done = true;
            // next waiter may also be satisfiable
            self.sem.wake_head();
            return Poll::Ready(SemaphorePermit {
                sem: self.sem.clone(),
                n: self.want,
            });
        }
        if self.queued {
            if let Some(ent) = ws.iter_mut().find(|w| w.ticket == self.ticket) {
                ent.waker = Some(cx.waker().clone());
            }
        } else {
            self.queued = true;
            ws.push_back(WaitEnt {
                ticket: self.ticket,
                want: self.want,
                waker: Some(cx.waker().clone()),
            });
        }
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if self.done || !self.queued {
            return;
        }
        // cancelled while queued: dequeue and let the next waiter through
        let mut ws = self.sem.inner.waiters.borrow_mut();
        if let Some(pos) = ws.iter().position(|w| w.ticket == self.ticket) {
            ws.remove(pos);
        }
        drop(ws);
        self.sem.wake_head();
    }
}

/// Guard holding semaphore permits; released on drop.
pub struct SemaphorePermit {
    sem: Semaphore,
    n: usize,
}

impl Drop for SemaphorePermit {
    fn drop(&mut self) {
        self.sem.release(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{join_all, Sim};
    use crate::time::SimTime;

    #[test]
    fn oneshot_delivers() {
        let mut sim = Sim::new(1);
        let v = sim.block_on(|sim| async move {
            let (tx, rx) = oneshot::<u32>();
            sim.spawn({
                let s = sim.clone();
                async move {
                    s.sleep_us(3).await;
                    tx.send(42);
                }
            });
            rx.await.unwrap()
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn oneshot_sender_drop_closes() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(|_sim| async move {
            let (tx, rx) = oneshot::<u32>();
            drop(tx);
            rx.await
        });
        assert_eq!(r, Err(Closed));
    }

    #[test]
    fn mailbox_fifo_single_consumer() {
        let mut sim = Sim::new(1);
        let got = sim.block_on(|sim| async move {
            let mb: Mailbox<u32> = Mailbox::new();
            let tx = mb.clone();
            sim.spawn({
                let s = sim.clone();
                async move {
                    for i in 0..5 {
                        s.sleep_us(1).await;
                        tx.send(i);
                    }
                }
            });
            let mut got = Vec::new();
            for _ in 0..5 {
                got.push(mb.recv().await.unwrap());
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mailbox_close_drains_then_none() {
        let mut sim = Sim::new(1);
        let got = sim.block_on(|_sim| async move {
            let mb: Mailbox<u32> = Mailbox::new();
            mb.send(1);
            mb.send(2);
            mb.close();
            let mut got = Vec::new();
            while let Some(v) = mb.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn mailbox_worker_pool_consumes_all() {
        let mut sim = Sim::new(1);
        let n = sim.block_on(|sim| async move {
            let mb: Mailbox<u32> = Mailbox::new();
            let counter = Rc::new(Cell::new(0u32));
            let mut workers = Vec::new();
            for _ in 0..4 {
                let rx = mb.clone();
                let c = Rc::clone(&counter);
                let s = sim.clone();
                workers.push(sim.spawn(async move {
                    // worker clones are also senders; rely on explicit close
                    loop {
                        let Some(_v) = rx.try_recv() else {
                            if rx.shared.borrow().closed {
                                break;
                            }
                            s.sleep_us(1).await;
                            continue;
                        };
                        s.sleep_us(2).await;
                        c.set(c.get() + 1);
                    }
                }));
            }
            for i in 0..20 {
                mb.send(i);
            }
            mb.close();
            for w in workers {
                w.await;
            }
            counter.get()
        });
        assert_eq!(n, 20);
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Sim::new(1);
        let end = sim.block_on(|sim| async move {
            let sem = Semaphore::new(2);
            // 6 jobs of 10us with 2 slots -> 30us total
            let futs: Vec<_> = (0..6)
                .map(|_| {
                    let sem = sem.clone();
                    let s = sim.clone();
                    async move {
                        let _g = sem.acquire().await;
                        s.sleep_us(10).await;
                    }
                })
                .collect();
            join_all(&sim, futs).await;
            sim.now()
        });
        assert_eq!(end, SimTime::from_us(30));
    }

    #[test]
    fn semaphore_fifo_no_barging() {
        let mut sim = Sim::new(1);
        let order = sim.block_on(|sim| async move {
            let sem = Semaphore::new(2);
            let order = Rc::new(RefCell::new(Vec::new()));
            let hold = sem.acquire_n(2).await;
            let mut hs = Vec::new();
            // big request arrives first, then small ones; small must wait
            for (i, want) in [(0u32, 2usize), (1, 1), (2, 1)] {
                let sem = sem.clone();
                let ord = Rc::clone(&order);
                let s = sim.clone();
                hs.push(sim.spawn(async move {
                    // stagger arrival order deterministically
                    s.sleep_ns(i as u64 + 1).await;
                    let _g = sem.acquire_n(want).await;
                    ord.borrow_mut().push(i);
                    s.sleep_us(1).await;
                }));
            }
            sim.sleep_us(1).await;
            drop(hold);
            for h in hs {
                h.await;
            }
            Rc::try_unwrap(order).unwrap().into_inner()
        });
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn semaphore_cancel_unblocks_queue() {
        let mut sim = Sim::new(1);
        sim.block_on(|sim| async move {
            let sem = Semaphore::new(1);
            let g = sem.acquire().await;
            // queue a waiter then cancel it
            let mut fut = Box::pin(sem.acquire_n(1));
            // poll once to enqueue
            let s2 = sim.clone();
            let h = sim.spawn(async move {
                s2.sleep_us(1).await;
            });
            futures_poll_once(&mut fut);
            drop(fut); // cancelled
            drop(g);
            // a fresh acquire must succeed immediately
            let _g2 = sem.acquire().await;
            h.await;
        });
    }

    /// Poll a future exactly once with a no-op waker (test helper).
    fn futures_poll_once<F: Future + Unpin>(f: &mut F) {
        use std::sync::Arc;
        use std::task::Wake;
        struct Nop;
        impl Wake for Nop {
            fn wake(self: Arc<Self>) {}
        }
        let waker = std::task::Waker::from(Arc::new(Nop));
        let mut cx = Context::from_waker(&waker);
        let _ = Pin::new(f).poll(&mut cx);
    }
}
