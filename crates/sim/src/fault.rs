//! Deterministic fault injection in virtual time.
//!
//! A [`FaultPlan`] is a schedule of [`FaultAction`]s at absolute virtual
//! instants — engine crashes/restarts, fabric partitions, message loss,
//! latency spikes. The plan is plain data: it can be written by hand for a
//! directed chaos test or generated from a seed for randomised sweeps, and
//! the same plan against the same simulation seed reproduces the run
//! bit-for-bit.
//!
//! [`FaultInjector::install`] arms a plan: a driver task sleeps to each
//! event's instant and hands the action to a handler closure supplied by the
//! harness (the sim kernel knows nothing about engines or fabrics — the
//! handler maps abstract node indices onto whatever the harness simulates).
//! Every delivered action is appended to a fired log for determinism
//! assertions.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::executor::Sim;
use crate::time::{SimDuration, SimTime};

/// One injectable fault. `node` indices are abstract — the harness's handler
/// decides what they map to (an engine, a client node, a switch port).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultAction {
    /// Take a node down: its services stop answering and in-flight work on
    /// it is lost.
    Crash { node: usize },
    /// Bring a previously crashed node back up (state it persisted
    /// survives; volatile state is gone).
    Restart { node: usize },
    /// Sever connectivity between two nodes (both directions).
    Partition { a: usize, b: usize },
    /// Remove all partitions, message loss, and in-flight corruption.
    HealAll,
    /// Drop messages uniformly at the given rate, in parts per million.
    DropRate { ppm: u32 },
    /// Add a fixed latency to every message on the wire.
    LatencySpike { extra_ns: u64 },
    /// Remove the latency spike.
    LatencyClear,
    /// Silently corrupt stored extents on one storage target: each extent
    /// rots independently with probability `fraction_ppm` parts per million.
    /// Stored checksums go stale — nothing notices until a verified read or
    /// a scrub pass hashes the bytes.
    BitRot { target: usize, fraction_ppm: u32 },
    /// Corrupt data frames in flight at the given rate (parts per million):
    /// torn bulk transfers that arrive on time and parse fine. Caught only
    /// by end-to-end checksums. `ppm: 0` (or `HealAll`) clears it.
    CorruptInFlight { ppm: u32 },
}

/// A time-ordered schedule of fault events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add an event; keeps the plan usable regardless of insertion order.
    pub fn at(mut self, when: SimTime, action: FaultAction) -> Self {
        self.events.push((when, action));
        self.events.sort_by_key(|&(t, a)| (t, a));
        self
    }

    /// The scheduled events in firing order.
    pub fn events(&self) -> &[(SimTime, FaultAction)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generate a random but reproducible plan: `events` faults spread over
    /// `horizon`, drawn from crash/restart (paired — only crashed nodes
    /// restart), partitions, loss bursts and latency spikes across `nodes`
    /// abstract nodes. The same `(seed, nodes, events, horizon)` always
    /// yields the same plan.
    pub fn random(seed: u64, nodes: usize, events: usize, horizon: SimDuration) -> Self {
        assert!(nodes > 0, "fault plan needs at least one node");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let mut plan = FaultPlan::new();
        let mut down: Vec<usize> = Vec::new();
        let mut lossy = false;
        let mut spiked = false;
        // Draw the instants first and sort them so the crash/restart pairing
        // below holds in *time* order, not generation order.
        let mut times: Vec<u64> = (0..events)
            .map(|_| rng.gen_range(0..horizon.as_ns().max(1)))
            .collect();
        times.sort_unstable();
        for at in times {
            let at = SimTime::from_ns(at);
            let action = match rng.gen_range(0..6u32) {
                0 => {
                    let node = rng.gen_range(0..nodes as u64) as usize;
                    if !down.contains(&node) {
                        down.push(node);
                    }
                    FaultAction::Crash { node }
                }
                1 if !down.is_empty() => {
                    let node = down.remove(rng.gen_range(0..down.len() as u64) as usize);
                    FaultAction::Restart { node }
                }
                2 if nodes > 1 => {
                    let a = rng.gen_range(0..nodes as u64) as usize;
                    let b = (a + 1 + rng.gen_range(0..(nodes - 1) as u64) as usize) % nodes;
                    FaultAction::Partition { a, b }
                }
                3 => {
                    lossy = true;
                    FaultAction::DropRate {
                        ppm: rng.gen_range(1_000..100_000u32),
                    }
                }
                4 if !spiked => {
                    spiked = true;
                    FaultAction::LatencySpike {
                        extra_ns: rng.gen_range(10_000..5_000_000u64),
                    }
                }
                _ if spiked || lossy => {
                    spiked = false;
                    lossy = false;
                    FaultAction::HealAll
                }
                _ => FaultAction::LatencyClear,
            };
            plan = plan.at(at, action);
        }
        // Leave the system healable: restart what is still down and clear
        // partitions/loss at the horizon so recovery is always reachable.
        down.sort_unstable();
        for node in down {
            plan = plan.at(
                SimTime::from_ns(horizon.as_ns()),
                FaultAction::Restart { node },
            );
        }
        plan.at(SimTime::from_ns(horizon.as_ns()), FaultAction::HealAll)
    }
}

/// Drives a [`FaultPlan`] against a handler; records what actually fired.
pub struct FaultInjector {
    fired: Rc<RefCell<Vec<(SimTime, FaultAction)>>>,
}

impl FaultInjector {
    /// Arm `plan`: spawn a driver task that delivers each action to
    /// `handler` at its scheduled virtual instant. Actions scheduled at the
    /// same instant fire in plan order.
    pub fn install(
        sim: &Sim,
        plan: FaultPlan,
        handler: impl Fn(&Sim, FaultAction) + 'static,
    ) -> FaultInjector {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let log = Rc::clone(&fired);
        let s = sim.clone();
        sim.spawn(async move {
            for (when, action) in plan.events {
                s.sleep_until(when).await;
                handler(&s, action);
                log.borrow_mut().push((s.now(), action));
            }
        });
        FaultInjector { fired }
    }

    /// The log of `(fire time, action)` pairs delivered so far.
    pub fn fired(&self) -> Vec<(SimTime, FaultAction)> {
        self.fired.borrow().clone()
    }
}

/// Outcome of [`select2`]: which future finished first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future won.
    Left(A),
    /// The second future won.
    Right(B),
}

/// Race two futures; the loser is dropped (cancelled). Polls left first, so
/// simultaneous completion resolves to `Left` — deterministic tie-breaking.
///
/// Both futures must be [`Unpin`]: pin an `async` block to the stack with
/// [`std::pin::pin!`] first (as [`timeout`] does, at zero cost) or to the
/// heap with [`Box::pin`]. Requiring `Unpin` keeps the combinator free of
/// `unsafe` pin projection — `Pin<&mut F>` and `Pin<Box<F>>` are always
/// `Unpin`, so the caller chooses where the pinning happens and `poll`
/// re-pins with the safe [`Pin::new`].
pub fn select2<FA, FB>(a: FA, b: FB) -> Select2<FA, FB>
where
    FA: Future + Unpin,
    FB: Future + Unpin,
{
    Select2 { a, b }
}

/// Future returned by [`select2`].
pub struct Select2<FA, FB> {
    a: FA,
    b: FB,
}

impl<FA: Future + Unpin, FB: Future + Unpin> Future for Select2<FA, FB> {
    type Output = Either<FA::Output, FB::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut(); // safe: Self: Unpin (both fields are)
        if let Poll::Ready(v) = Pin::new(&mut this.a).poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut this.b).poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Run `fut` with a virtual-time deadline: `Some(out)` if it completes
/// within `dur`, `None` if the timer wins (the future is then dropped).
///
/// `fut` is pinned to this frame's stack, so the per-RPC hot path (every
/// fabric attempt runs under a `timeout`) stays allocation-free.
pub async fn timeout<T>(sim: &Sim, dur: SimDuration, fut: impl Future<Output = T>) -> Option<T> {
    let fut = std::pin::pin!(fut);
    match select2(fut, sim.sleep(dur)).await {
        Either::Left(v) => Some(v),
        Either::Right(()) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_in_order_at_scheduled_times() {
        let mut sim = Sim::new(7);
        let plan = FaultPlan::new()
            .at(SimTime::from_us(30), FaultAction::HealAll)
            .at(SimTime::from_us(10), FaultAction::Crash { node: 2 })
            .at(SimTime::from_us(20), FaultAction::Restart { node: 2 });
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s2 = Rc::clone(&seen);
        let log = sim.block_on(move |sim| async move {
            let inj = FaultInjector::install(&sim, plan, move |s, a| {
                s2.borrow_mut().push((s.now().as_ns() / 1_000, a));
            });
            sim.sleep_us(100).await;
            inj.fired()
        });
        assert_eq!(
            *seen.borrow(),
            vec![
                (10, FaultAction::Crash { node: 2 }),
                (20, FaultAction::Restart { node: 2 }),
                (30, FaultAction::HealAll),
            ]
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].0, SimTime::from_us(10));
    }

    #[test]
    fn random_plans_are_reproducible_and_restart_only_crashed() {
        let a = FaultPlan::random(0xBEEF, 8, 40, SimDuration::from_ms(50));
        let b = FaultPlan::random(0xBEEF, 8, 40, SimDuration::from_ms(50));
        assert_eq!(a, b);
        let c = FaultPlan::random(0xBEF0, 8, 40, SimDuration::from_ms(50));
        assert_ne!(a, c);
        // every Restart is preceded (in time order) by a Crash of that node
        let mut down = std::collections::BTreeSet::new();
        for &(_, action) in a.events() {
            match action {
                FaultAction::Crash { node } => {
                    down.insert(node);
                }
                FaultAction::Restart { node } => {
                    assert!(down.remove(&node), "restart of a live node {node}");
                }
                _ => {}
            }
        }
        assert!(down.is_empty(), "plan left nodes down: {down:?}");
    }

    #[test]
    fn timeout_returns_some_before_deadline_none_after() {
        let mut sim = Sim::new(1);
        let (fast, slow) = sim.block_on(|sim| async move {
            let fast = timeout(&sim, SimDuration::from_us(10), async {
                sim.sleep_us(3).await;
                42u32
            })
            .await;
            let slow = timeout(&sim, SimDuration::from_us(10), async {
                sim.sleep_us(30).await;
                43u32
            })
            .await;
            (fast, slow)
        });
        assert_eq!(fast, Some(42));
        assert_eq!(slow, None);
    }

    #[test]
    fn select2_accepts_stack_pinned_async_blocks() {
        let mut sim = Sim::new(1);
        let out = sim.block_on(|sim| async move {
            let a = std::pin::pin!(async {
                sim.sleep_us(1).await;
                1u32
            });
            let b = std::pin::pin!(async {
                sim.sleep_us(2).await;
                2u32
            });
            select2(a, b).await
        });
        assert_eq!(out, Either::Left(1));
    }

    #[test]
    fn select2_breaks_ties_left() {
        let mut sim = Sim::new(1);
        let won = sim.block_on(|sim| async move {
            match select2(sim.sleep_us(5), sim.sleep_us(5)).await {
                Either::Left(()) => "left",
                Either::Right(()) => "right",
            }
        });
        assert_eq!(won, "left");
    }
}
