//! # daos-sim — deterministic discrete-event simulation kernel
//!
//! A single-threaded async executor driven by a *virtual* clock. Simulated
//! components are written as ordinary `async` functions that await timers
//! (`Sim::sleep`), resources ([`Pipe`], [`Semaphore`]) and messages
//! ([`oneshot`], [`Mailbox`]); the executor advances virtual time from one
//! scheduled event to the next, so a simulation of hours of I/O runs in
//! milliseconds of host time and is *bit-for-bit deterministic* for a given
//! seed.
//!
//! The kernel is intentionally small: everything domain-specific (storage
//! media, fabrics, servers) lives in higher crates and is expressed with the
//! primitives here.
//!
//! ```
//! use daos_sim::{Sim, SimTime};
//!
//! let mut sim = Sim::new(42);
//! let out = sim.block_on(|sim| async move {
//!     sim.sleep_us(5).await;
//!     sim.now()
//! });
//! assert_eq!(out, SimTime::from_us(5));
//! ```

// The kernel is the one sanctioned entry point for future `unsafe`
// (every other workspace crate carries `forbid`): relaxing this to a
// local `allow` requires a per-block `// SAFETY:` comment, which the
// `simlint` D05 gate enforces. Today the whole workspace is unsafe-free.
#![deny(unsafe_code)]

pub mod executor;
pub mod fault;
pub mod pipe;
pub mod stats;
pub mod sync;
pub mod time;
pub mod units;

pub use executor::{JoinHandle, Sim};
pub use fault::{select2, timeout, Either, FaultAction, FaultInjector, FaultPlan};
pub use pipe::{Pipe, SharedPipe};
pub use stats::{Histogram, OnlineStats, PercentileSketch};
pub use sync::{oneshot, Mailbox, Semaphore, SemaphorePermit};
pub use time::{SimDuration, SimTime};
