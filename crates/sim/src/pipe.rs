//! Flow-level bandwidth resources.
//!
//! A [`Pipe`] models a serial resource with finite bandwidth — a NIC port, a
//! link, a memory channel, an SSD — as a FIFO: each transfer occupies the
//! pipe for `bytes / bandwidth` and completes after an additional fixed
//! latency. Because upper layers chunk large transfers (RPC segments, FUSE
//! requests), FIFO granularity approximates fair sharing well while staying
//! O(1) per transfer.

use std::cell::Cell;
use std::rc::Rc;

use crate::executor::Sim;
use crate::time::{SimDuration, SimTime};
use crate::units::{Bandwidth, Bytes};

/// A FIFO bandwidth resource with fixed per-transfer latency.
pub struct Pipe {
    name: String,
    bw: Bandwidth,
    latency: SimDuration,
    next_free: Cell<u64>,
    busy_ns: Cell<u64>,
    bytes_total: Cell<u64>,
    ops_total: Cell<u64>,
}

/// Shared handle to a [`Pipe`].
pub type SharedPipe = Rc<Pipe>;

impl Pipe {
    /// Create a pipe with the given bandwidth and fixed latency.
    pub fn new(name: impl Into<String>, bw: Bandwidth, latency: SimDuration) -> SharedPipe {
        Rc::new(Pipe {
            name: name.into(),
            bw,
            latency,
            next_free: Cell::new(0),
            busy_ns: Cell::new(0),
            bytes_total: Cell::new(0),
            ops_total: Cell::new(0),
        })
    }

    /// The pipe's configured bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bw
    }
    /// The pipe's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Move `bytes` through the pipe, waiting for queueing, serialisation
    /// and latency. Returns the time the transfer completed.
    pub async fn transfer(&self, sim: &Sim, bytes: u64) -> SimTime {
        let now = sim.now().as_ns();
        let start = now.max(self.next_free.get());
        let busy = self.bw.ns_for_bytes(Bytes(bytes)).get();
        self.next_free.set(start + busy);
        self.busy_ns.set(self.busy_ns.get() + busy);
        self.bytes_total.set(self.bytes_total.get() + bytes);
        self.ops_total.set(self.ops_total.get() + 1);
        let done = SimTime::from_ns(start + busy) + self.latency;
        sim.sleep_until(done).await;
        done
    }

    /// Occupy the pipe for a fixed duration (control-plane work with no
    /// byte payload, e.g. a metadata op on a device).
    pub async fn occupy(&self, sim: &Sim, dur: SimDuration) -> SimTime {
        let now = sim.now().as_ns();
        let start = now.max(self.next_free.get());
        self.next_free.set(start + dur.as_ns());
        self.busy_ns.set(self.busy_ns.get() + dur.as_ns());
        self.ops_total.set(self.ops_total.get() + 1);
        let done = SimTime::from_ns(start + dur.as_ns()) + self.latency;
        sim.sleep_until(done).await;
        done
    }

    /// Reserve capacity for `bytes` without waiting, constrained to start no
    /// earlier than `earliest` (ns). Returns `(start, end)` of the busy
    /// interval. Used by multi-hop paths (NIC→wire→NIC) that compute a
    /// pipelined completion time across several pipes and sleep once.
    pub fn reserve_after(&self, earliest: u64, bytes: u64) -> (u64, u64) {
        let start = earliest.max(self.next_free.get());
        let busy = self.bw.ns_for_bytes(Bytes(bytes)).get();
        self.next_free.set(start + busy);
        self.busy_ns.set(self.busy_ns.get() + busy);
        self.bytes_total.set(self.bytes_total.get() + bytes);
        self.ops_total.set(self.ops_total.get() + 1);
        (start, start + busy)
    }

    /// Start a batch of reservations: the pipe's flow state is read once
    /// into locals, arbitrarily many [`PipeBatch::reserve_after`] calls run
    /// against them (identical arithmetic, per-call rounding included), and
    /// one commit writes the state back when the batch drops. This is the
    /// fast path for frame-pipelined multi-hop transfers, which otherwise
    /// touch the counters once per frame.
    pub fn batch(&self) -> PipeBatch<'_> {
        PipeBatch {
            pipe: self,
            next_free: self.next_free.get(),
            busy_ns: 0,
            bytes: 0,
            ops: 0,
        }
    }

    /// This pipe's fixed per-transfer latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// How long a transfer arriving `now` would wait before starting
    /// (current backlog depth in time units).
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        SimDuration(self.next_free.get().saturating_sub(now.as_ns()))
    }

    /// Total bytes moved so far.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total.get()
    }
    /// Total transfers so far.
    pub fn ops_total(&self) -> u64 {
        self.ops_total.get()
    }
    /// Fraction of `[0, now]` during which the pipe was busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_ns() == 0 {
            return 0.0;
        }
        self.busy_ns.get() as f64 / now.as_ns() as f64
    }
}

/// In-progress batched reservation on a [`Pipe`]; see [`Pipe::batch`].
///
/// Per-call math is exactly [`Pipe::reserve_after`]'s — same `ns_for`
/// rounding per call — only the counter updates are deferred to drop.
pub struct PipeBatch<'a> {
    pipe: &'a Pipe,
    next_free: u64,
    busy_ns: u64,
    bytes: u64,
    ops: u64,
}

impl PipeBatch<'_> {
    /// Batched [`Pipe::reserve_after`].
    pub fn reserve_after(&mut self, earliest: u64, bytes: u64) -> (u64, u64) {
        let start = earliest.max(self.next_free);
        let busy = self.pipe.bw.ns_for_bytes(Bytes(bytes)).get();
        self.next_free = start + busy;
        self.busy_ns += busy;
        self.bytes += bytes;
        self.ops += 1;
        (start, start + busy)
    }
}

impl Drop for PipeBatch<'_> {
    fn drop(&mut self) {
        let p = self.pipe;
        p.next_free.set(self.next_free);
        p.busy_ns.set(p.busy_ns.get() + self.busy_ns);
        p.bytes_total.set(p.bytes_total.get() + self.bytes);
        p.ops_total.set(p.ops_total.get() + self.ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::join_all;
    use crate::units::MIB;

    fn mk(bw_gib: f64, lat_us: u64) -> (Sim, SharedPipe) {
        let sim = Sim::new(1);
        let pipe = Pipe::new(
            "test",
            Bandwidth::gib_per_sec(bw_gib),
            SimDuration::from_us(lat_us),
        );
        (sim, pipe)
    }

    #[test]
    fn single_transfer_time_is_size_over_bw_plus_latency() {
        let (mut sim, pipe) = mk(1.0, 10);
        let t = sim.block_on(|sim| {
            let pipe = Rc::clone(&pipe);
            async move {
                pipe.transfer(&sim, MIB).await;
                sim.now()
            }
        });
        // 1 MiB at 1 GiB/s = 2^20/2^30 s = ~976.6us, plus 10us latency
        let expect_ns = Bandwidth::gib_per_sec(1.0).ns_for(MIB) + 10_000;
        assert_eq!(t.as_ns(), expect_ns);
    }

    #[test]
    fn back_to_back_transfers_serialise() {
        let (mut sim, pipe) = mk(1.0, 0);
        let t = sim.block_on(|sim| {
            let pipe = Rc::clone(&pipe);
            async move {
                let futs: Vec<_> = (0..4)
                    .map(|_| {
                        let p = Rc::clone(&pipe);
                        let s = sim.clone();
                        async move {
                            p.transfer(&s, MIB).await;
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
                sim.now()
            }
        });
        let one = Bandwidth::gib_per_sec(1.0).ns_for(MIB);
        assert_eq!(t.as_ns(), 4 * one);
        assert_eq!(pipe.bytes_total(), 4 * MIB);
        assert_eq!(pipe.ops_total(), 4);
    }

    #[test]
    fn latency_overlaps_between_transfers() {
        // With latency L, two transfers finish at b+L and 2b+L (pipelined),
        // not 2(b+L): latency is propagation, not occupancy.
        let (mut sim, pipe) = mk(1.0, 100);
        let ends = sim.block_on(|sim| {
            let pipe = Rc::clone(&pipe);
            async move {
                let futs: Vec<_> = (0..2)
                    .map(|_| {
                        let p = Rc::clone(&pipe);
                        let s = sim.clone();
                        async move { p.transfer(&s, MIB).await.as_ns() }
                    })
                    .collect();
                join_all(&sim, futs).await
            }
        });
        let b = Bandwidth::gib_per_sec(1.0).ns_for(MIB);
        assert_eq!(ends[0], b + 100_000);
        assert_eq!(ends[1], 2 * b + 100_000);
    }

    #[test]
    fn occupy_blocks_like_transfer() {
        let (mut sim, pipe) = mk(1.0, 0);
        let t = sim.block_on(|sim| {
            let pipe = Rc::clone(&pipe);
            async move {
                pipe.occupy(&sim, SimDuration::from_us(7)).await;
                pipe.occupy(&sim, SimDuration::from_us(7)).await;
                sim.now()
            }
        });
        assert_eq!(t, SimTime::from_us(14));
    }

    #[test]
    fn batched_reservations_match_direct_calls() {
        let (_, direct) = mk(1.5, 3);
        let (_, batched) = mk(1.5, 3);
        let frames = [128 * 1024u64, 128 * 1024, 77_777, 1, 0];
        let mut direct_ends = Vec::new();
        for (i, &f) in frames.iter().enumerate() {
            direct_ends.push(direct.reserve_after(i as u64 * 10, f));
        }
        let mut batch_ends = Vec::new();
        {
            let mut b = batched.batch();
            for (i, &f) in frames.iter().enumerate() {
                batch_ends.push(b.reserve_after(i as u64 * 10, f));
            }
        }
        assert_eq!(direct_ends, batch_ends);
        assert_eq!(direct.bytes_total(), batched.bytes_total());
        assert_eq!(direct.ops_total(), batched.ops_total());
        assert_eq!(
            direct.queue_delay(SimTime::ZERO),
            batched.queue_delay(SimTime::ZERO)
        );
        assert_eq!(
            direct.utilization(SimTime::from_us(1)),
            batched.utilization(SimTime::from_us(1))
        );
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let (mut sim, pipe) = mk(1.0, 0);
        sim.block_on(|sim| {
            let pipe = Rc::clone(&pipe);
            async move {
                pipe.transfer(&sim, MIB).await;
                let b = Bandwidth::gib_per_sec(1.0).ns_for(MIB);
                sim.sleep(SimDuration::from_ns(b)).await;
            }
        });
        let b = Bandwidth::gib_per_sec(1.0).ns_for(MIB);
        let u = pipe.utilization(SimTime::from_ns(2 * b));
        assert!((u - 0.5).abs() < 1e-9, "{u}");
    }
}
