//! Lightweight measurement accumulators used by benchmark harnesses.

/// Welford online mean/variance plus min/max.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest sample (NaN-free; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }
    /// Largest sample (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
    /// Coefficient of variation (stddev / mean), 0 when mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean()
        }
    }
    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two bucketed histogram of `u64` values (latencies in ns, sizes
/// in bytes). Bucket `i` holds values in `[2^i, 2^(i+1))`; bucket 0 holds
/// `{0, 1}`.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Record one value.
    pub fn add(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }
    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: upper bound of the bucket containing the
    /// q-quantile sample (q in 0..=1).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for i in 0..64 {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Log-linear quantile sketch for latency distributions: each power-of-two
/// range is split into 16 linear sub-buckets, so any reported quantile is
/// within ~6.25% of the true sample — tight enough for p999 SLO tables,
/// unlike [`Histogram`] whose pure power-of-two buckets can be off by ~2×.
/// Values below 16 are exact. Deterministic and mergeable (bucket-wise
/// addition), so per-task sketches can be combined without ordering
/// effects. Fixed 976-counter footprint (~8 KiB).
#[derive(Clone, Debug)]
pub struct PercentileSketch {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// Linear sub-buckets per power-of-two range (16 → ≤ 6.25% relative error).
const SUBBUCKETS: u64 = 16;
/// Bucket count: 16 exact small values + 60 ranges × 16 sub-buckets.
const SKETCH_BUCKETS: usize = 16 + 60 * 16;

impl Default for PercentileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl PercentileSketch {
    /// Empty sketch.
    pub fn new() -> Self {
        PercentileSketch {
            buckets: vec![0; SKETCH_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn index_of(v: u64) -> usize {
        if v < SUBBUCKETS {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as u64;
        // ranges [2^msb, 2^(msb+1)) for msb ≥ 4, 16 linear steps each
        let group = msb - 3;
        let sub = (v >> (msb - 4)) & (SUBBUCKETS - 1);
        ((group * SUBBUCKETS + sub) as usize).min(SKETCH_BUCKETS - 1)
    }

    /// Upper bound of bucket `idx` — the value a quantile reports.
    fn upper_of(idx: usize) -> u64 {
        if idx < SUBBUCKETS as usize {
            return idx as u64;
        }
        let group = idx as u64 / SUBBUCKETS;
        let sub = idx as u64 % SUBBUCKETS;
        let msb = group + 3;
        let lower = (1u64 << msb) + (sub << (msb - 4));
        // the topmost bucket's upper bound saturates at u64::MAX
        lower.saturating_add((1u64 << (msb - 4)) - 1)
    }

    /// Record one value.
    pub fn add(&mut self, v: u64) {
        self.buckets[Self::index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }
    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }
    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The q-quantile (q in 0..=1): upper bound of the sub-bucket holding
    /// the rank-⌈q·n⌉ sample, capped at the true maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::upper_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another sketch into this one.
    pub fn merge(&mut self, other: &PercentileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.add(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5);
        // median 500 falls in bucket [256,512) -> upper bound 511
        assert_eq!(p50, 511);
        let p100 = h.quantile(1.0);
        assert_eq!(p100, 1023);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.add(10);
        b.add(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 1010);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        let p = PercentileSketch::new();
        assert_eq!(p.quantile(0.999), 0);
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.max(), 0);
    }

    #[test]
    fn sketch_small_values_are_exact() {
        let mut p = PercentileSketch::new();
        for v in 0..16u64 {
            p.add(v);
        }
        assert_eq!(p.quantile(0.5), 7);
        assert_eq!(p.quantile(1.0), 15);
    }

    #[test]
    fn sketch_relative_error_bounded() {
        let mut p = PercentileSketch::new();
        for v in 1..=1_000_000u64 {
            p.add(v);
        }
        for (q, truth) in [
            (0.5, 500_000.0),
            (0.9, 900_000.0),
            (0.99, 990_000.0),
            (0.999, 999_000.0),
        ] {
            let got = p.quantile(q) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 0.0625, "q{q}: got {got}, want ~{truth} (rel {rel})");
            // reported value is an upper bound of the true quantile's bucket
            assert!(got >= truth * (1.0 - 1e-9), "q{q} under-reports");
        }
        assert_eq!(p.quantile(1.0), 1_000_000);
        assert_eq!(p.count(), 1_000_000);
    }

    #[test]
    fn sketch_merge_equals_sequential() {
        let vals: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(2654435761) % (1 << 40))
            .collect();
        let mut all = PercentileSketch::new();
        let mut a = PercentileSketch::new();
        let mut b = PercentileSketch::new();
        for (i, &v) in vals.iter().enumerate() {
            all.add(v);
            if i % 3 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn sketch_handles_extreme_values() {
        let mut p = PercentileSketch::new();
        p.add(0);
        p.add(u64::MAX);
        p.add(u64::MAX);
        assert_eq!(p.count(), 3);
        assert_eq!(p.quantile(1.0), u64::MAX);
        assert_eq!(p.quantile(0.01), 0);
    }
}
