//! The virtual-time async executor.
//!
//! Tasks are plain `Future<Output = ()>` boxes polled on a single host
//! thread. Time only advances when every runnable task has been polled to
//! quiescence: the executor then pops the earliest timer from a binary heap,
//! jumps the clock to it, and wakes the sleeper. Scheduling is strictly
//! ordered by `(deadline, registration sequence)` and the ready queue is
//! FIFO, so runs are deterministic.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::time::{SimDuration, SimTime};

type TaskFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// FIFO queue of runnable task ids, shared with wakers.
///
/// Wakers must be `Send + Sync` even though the executor is single-threaded,
/// hence the (uncontended) mutex.
struct ReadyQueue {
    queue: Mutex<VecDeque<usize>>,
}

impl ReadyQueue {
    fn push(&self, id: usize) {
        self.queue.lock().push_back(id);
    }
    fn pop(&self) -> Option<usize> {
        self.queue.lock().pop_front()
    }
}

struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A timer heap entry; ordered by `(deadline, seq)` so ties break by
/// registration order and the run is deterministic.
struct TimerEnt {
    at: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEnt {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for TimerEnt {}
impl PartialOrd for TimerEnt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEnt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct TaskSlot {
    future: TaskFuture,
    waker: Waker,
}

struct Inner {
    now: Cell<u64>,
    timer_seq: Cell<u64>,
    timers: RefCell<BinaryHeap<Reverse<TimerEnt>>>,
    ready: Arc<ReadyQueue>,
    tasks: RefCell<Vec<Option<TaskSlot>>>,
    free: RefCell<Vec<usize>>,
    live_tasks: Cell<usize>,
    spawned_total: Cell<u64>,
    rng: RefCell<ChaCha8Rng>,
    seed: u64,
}

/// A handle to the simulation: clock, scheduler and RNG.
///
/// `Sim` is a cheap reference-counted handle; clone it freely into tasks.
/// It is *not* `Send` — a simulation lives on one thread (parallelism comes
/// from running many independent `Sim`s, one per parameter point).
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

/// Result slot shared between a spawned task and its [`JoinHandle`].
struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Awaitable completion of a spawned task. Dropping it detaches the task.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            return Poll::Ready(v);
        }
        assert!(!st.finished, "JoinHandle polled after completion");
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl Sim {
    /// Create a fresh simulation with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(0),
                timer_seq: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                ready: Arc::new(ReadyQueue {
                    queue: Mutex::new(VecDeque::new()),
                }),
                tasks: RefCell::new(Vec::new()),
                free: RefCell::new(Vec::new()),
                live_tasks: Cell::new(0),
                spawned_total: Cell::new(0),
                rng: RefCell::new(ChaCha8Rng::seed_from_u64(seed)),
                seed,
            }),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.inner.now.get())
    }

    /// The seed this simulation was created with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Number of tasks that have been spawned over the sim's lifetime.
    pub fn spawned_total(&self) -> u64 {
        self.inner.spawned_total.get()
    }

    /// Number of tasks currently alive (not yet completed).
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Spawn a task; it runs concurrently (in virtual time) with its parent.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
            finished: false,
        }));
        let st2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut st = st2.borrow_mut();
            st.result = Some(out);
            st.finished = true;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        };
        let id = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let id = self.inner.free.borrow_mut().pop().unwrap_or_else(|| {
                tasks.push(None);
                tasks.len() - 1
            });
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                ready: Arc::clone(&self.inner.ready),
            }));
            tasks[id] = Some(TaskSlot {
                future: Box::pin(wrapped),
                waker,
            });
            id
        };
        self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        self.inner
            .spawned_total
            .set(self.inner.spawned_total.get() + 1);
        self.inner.ready.push(id);
        JoinHandle { state }
    }

    /// Register `waker` to fire at absolute time `at`.
    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) {
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        self.inner.timers.borrow_mut().push(Reverse(TimerEnt {
            at: at.0,
            seq,
            waker,
        }));
    }

    /// Sleep for `dur` of simulated time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Sleep until the absolute instant `at` (no-op if already past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: at,
            registered: false,
        }
    }

    /// Convenience: sleep a number of nanoseconds.
    pub fn sleep_ns(&self, ns: u64) -> Sleep {
        self.sleep(SimDuration::from_ns(ns))
    }
    /// Convenience: sleep a number of microseconds.
    pub fn sleep_us(&self, us: u64) -> Sleep {
        self.sleep(SimDuration::from_us(us))
    }
    /// Convenience: sleep a number of milliseconds.
    pub fn sleep_ms(&self, ms: u64) -> Sleep {
        self.sleep(SimDuration::from_ms(ms))
    }

    /// Yield to other runnable tasks at the current instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { polled: false }
    }

    /// Uniform random `u64`.
    pub fn rand_u64(&self) -> u64 {
        self.inner.rng.borrow_mut().next_u64()
    }
    /// Uniform random float in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        self.inner.rng.borrow_mut().gen::<f64>()
    }
    /// Uniform random integer in `[0, n)`.
    pub fn rand_below(&self, n: u64) -> u64 {
        assert!(n > 0);
        self.inner.rng.borrow_mut().gen_range(0..n)
    }
    /// Exponentially distributed duration with the given mean (for jitter).
    pub fn rand_exp(&self, mean: SimDuration) -> SimDuration {
        let u: f64 = self.inner.rng.borrow_mut().gen_range(f64::EPSILON..1.0);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }
    /// Derive an independent, deterministic RNG stream for a component.
    pub fn derive_rng(&self, tag: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.inner.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag)
    }

    fn poll_task(&self, id: usize) {
        let slot = self.inner.tasks.borrow_mut()[id].take();
        let Some(mut slot) = slot else {
            return; // stale wake of a finished task
        };
        let mut cx = Context::from_waker(&slot.waker);
        match slot.future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.inner.free.borrow_mut().push(id);
                self.inner.live_tasks.set(self.inner.live_tasks.get() - 1);
            }
            Poll::Pending => {
                self.inner.tasks.borrow_mut()[id] = Some(slot);
            }
        }
    }

    fn drain_ready(&self) {
        while let Some(id) = self.inner.ready.pop() {
            self.poll_task(id);
        }
    }

    /// Run until no runnable tasks and no pending timers remain.
    ///
    /// Returns the number of tasks still alive (blocked forever — usually
    /// server loops waiting on mailboxes, or a deadlock if unexpected).
    pub fn run_until_quiescent(&self) -> usize {
        loop {
            self.drain_ready();
            let ent = self.inner.timers.borrow_mut().pop();
            match ent {
                Some(Reverse(ent)) => {
                    debug_assert!(ent.at >= self.inner.now.get(), "time went backwards");
                    self.inner.now.set(ent.at);
                    ent.waker.wake();
                }
                None => break,
            }
        }
        self.inner.live_tasks.get()
    }

    /// Spawn `f(sim)` as the root task and run until it completes.
    ///
    /// Background tasks that are still blocked when the root finishes are
    /// dropped (this is how server loops are torn down), breaking any
    /// `Sim`-handle reference cycles they hold.
    ///
    /// Panics if the simulation goes quiescent before the root completes —
    /// that is a deadlock in the simulated system.
    pub fn block_on<T: 'static, F, Fut>(&mut self, f: F) -> T
    where
        F: FnOnce(Sim) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        let handle = self.spawn(f(self.clone()));
        loop {
            self.drain_ready();
            if handle.state.borrow().finished {
                break;
            }
            let ent = self.inner.timers.borrow_mut().pop();
            match ent {
                Some(Reverse(ent)) => {
                    debug_assert!(ent.at >= self.inner.now.get(), "time went backwards");
                    self.inner.now.set(ent.at);
                    ent.waker.wake();
                }
                None => panic!(
                    "simulation deadlock: root task blocked with no pending events \
                     ({} tasks alive at {})",
                    self.inner.live_tasks.get(),
                    self.now()
                ),
            }
        }
        // Tear down survivors so Rc cycles through captured Sim handles break.
        self.inner.tasks.borrow_mut().clear();
        self.inner.free.borrow_mut().clear();
        self.inner.live_tasks.set(0);
        let out = handle.state.borrow_mut().result.take();
        out.expect("root task finished without storing a result")
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.sim.register_timer(deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Await every future in `futs`, concurrently, collecting outputs in order.
///
/// This is the kernel's `join_all`: each future is spawned as its own task so
/// they genuinely interleave in virtual time.
pub async fn join_all<T: 'static, F>(sim: &Sim, futs: Vec<F>) -> Vec<T>
where
    F: Future<Output = T> + 'static,
{
    let handles: Vec<JoinHandle<T>> = futs.into_iter().map(|f| sim.spawn(f)).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn time_starts_at_zero_and_advances() {
        let mut sim = Sim::new(1);
        let t = sim.block_on(|sim| async move {
            assert_eq!(sim.now(), SimTime::ZERO);
            sim.sleep_us(10).await;
            sim.sleep_us(5).await;
            sim.now()
        });
        assert_eq!(t, SimTime::from_us(15));
    }

    #[test]
    fn spawned_tasks_interleave() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        sim.block_on(move |sim| async move {
            let l = Rc::clone(&l2);
            let s = sim.clone();
            let h1 = sim.spawn({
                let l = Rc::clone(&l);
                let s = s.clone();
                async move {
                    s.sleep_us(2).await;
                    l.borrow_mut().push("b");
                }
            });
            let h2 = sim.spawn({
                let l = Rc::clone(&l);
                let s = s.clone();
                async move {
                    s.sleep_us(1).await;
                    l.borrow_mut().push("a");
                }
            });
            h1.await;
            h2.await;
            l2.borrow_mut().push("done");
        });
        assert_eq!(*log.borrow(), vec!["a", "b", "done"]);
    }

    #[test]
    fn join_all_orders_results() {
        let mut sim = Sim::new(7);
        let vals = sim.block_on(|sim| async move {
            let futs: Vec<_> = (0..10u64)
                .map(|i| {
                    let s = sim.clone();
                    async move {
                        // later indices sleep *less*, finishing first
                        s.sleep_us(10 - i).await;
                        i
                    }
                })
                .collect();
            join_all(&sim, futs).await
        });
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn same_deadline_fifo_order() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        sim.block_on(move |sim| async move {
            let mut handles = Vec::new();
            for i in 0..5 {
                let s = sim.clone();
                let l = Rc::clone(&l2);
                handles.push(sim.spawn(async move {
                    s.sleep_us(3).await;
                    l.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.await;
            }
        });
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim = Sim::new(seed);
            sim.block_on(|sim| async move {
                let futs: Vec<_> = (0..20u64)
                    .map(|i| {
                        let s = sim.clone();
                        async move {
                            let jitter = s.rand_below(1000);
                            s.sleep_ns(jitter).await;
                            s.now().as_ns() ^ i
                        }
                    })
                    .collect();
                join_all(&sim, futs).await
            })
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected() {
        let mut sim = Sim::new(1);
        sim.block_on(|sim| async move {
            // await a handle of a task that never finishes and nothing scheduled
            let h = sim.spawn(std::future::pending::<()>());
            h.await;
        });
    }

    #[test]
    fn background_tasks_dropped_after_root() {
        let mut sim = Sim::new(1);
        sim.block_on(|sim| async move {
            let _detached = sim.spawn(std::future::pending::<()>());
            sim.sleep_us(1).await;
        });
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn run_until_quiescent_reports_blocked() {
        let sim = Sim::new(1);
        let _h = sim.spawn(std::future::pending::<()>());
        let s = sim.clone();
        let _h2 = sim.spawn(async move {
            s.sleep_us(5).await;
        });
        let blocked = sim.run_until_quiescent();
        assert_eq!(blocked, 1);
        assert_eq!(sim.now(), SimTime::from_us(5));
    }

    #[test]
    fn rand_exp_is_positive_with_sane_mean() {
        let sim = Sim::new(3);
        let mean = SimDuration::from_us(100);
        let mut acc = 0u64;
        for _ in 0..1000 {
            let d = sim.rand_exp(mean);
            acc += d.as_ns();
        }
        let avg = acc as f64 / 1000.0;
        assert!((50_000.0..200_000.0).contains(&avg), "{avg}");
    }

    #[test]
    fn yield_now_runs_peers_first() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        sim.block_on(move |sim| async move {
            let l = Rc::clone(&l2);
            let peer = sim.spawn({
                let l = Rc::clone(&l);
                async move {
                    l.borrow_mut().push("peer");
                }
            });
            sim.yield_now().await;
            l2.borrow_mut().push("root");
            peer.await;
        });
        assert_eq!(*log.borrow(), vec!["peer", "root"]);
    }
}
