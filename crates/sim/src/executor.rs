//! The virtual-time async executor.
//!
//! Tasks are plain `Future<Output = ()>` boxes polled on a single host
//! thread. Time only advances when every runnable task has been polled to
//! quiescence: the executor then pops the earliest timer, jumps the clock to
//! it, and wakes the sleeper. Scheduling is strictly ordered by
//! `(deadline, registration sequence)` and the ready queue is FIFO, so runs
//! are deterministic.
//!
//! The timer store is a calendar queue (`TimerWheel`, private): a ring of
//! fixed-width slots covering the near future, with a binary-heap overflow
//! for deadlines beyond the ring's span. Most simulated waits (RPC legs,
//! media transfers, per-message CPU) land within a few microseconds of
//! `now`, so pushes and pops are O(1) bitmap operations instead of
//! `O(log n)` heap rebalances; selection is still strictly by
//! `(deadline, seq)` — the wheel orders *identically* to one global heap.
//!
//! Task storage is a slab arena with dense `u32` ids and a free list.
//! Wakers do not allocate: each is a [`RawWaker`] whose data word encodes
//! `(executor registry slot, task id)` and is never dereferenced — waking
//! looks the executor up in a thread-local registry and pushes the id onto
//! a plain `RefCell<VecDeque>` ready queue (the executor is single-threaded
//! by construction, so no mutex is involved).

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::time::{SimDuration, SimTime};

type TaskFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

// ------------------------------------------------------------------ wakers

thread_local! {
    /// Live executors on this thread, indexed by the registry slot encoded
    /// into every waker. `Weak`: a waker outliving its simulation (a leaked
    /// timer, a fragment of a torn-down task) must not keep it alive.
    static EXECUTORS: RefCell<Vec<Option<Weak<Inner>>>> = const { RefCell::new(Vec::new()) };
}

/// Vtable for the executor's allocation-free wakers. The data word is a
/// plain integer — `(registry slot << 32) | task id` — so clone copies it,
/// drop is a no-op, and wake decodes it and pushes onto the owning
/// executor's ready queue (a no-op if that simulation is gone).
static SIM_WAKER_VTABLE: RawWakerVTable =
    RawWakerVTable::new(waker_clone, waker_wake, waker_wake_by_ref, waker_drop);

// The four vtable entries must be `unsafe fn` by signature; none of them
// ever treats `data` as a pointer.

#[allow(unsafe_code)]
// SAFETY: `data` is an integer in disguise; copying it into a new RawWaker
// with the same vtable is trivially sound.
unsafe fn waker_clone(data: *const ()) -> RawWaker {
    RawWaker::new(data, &SIM_WAKER_VTABLE)
}

#[allow(unsafe_code)]
// SAFETY: decodes the integer data word; never dereferences it.
unsafe fn waker_wake(data: *const ()) {
    wake_encoded(data);
}

#[allow(unsafe_code)]
// SAFETY: decodes the integer data word; never dereferences it.
unsafe fn waker_wake_by_ref(data: *const ()) {
    wake_encoded(data);
}

#[allow(unsafe_code)]
// SAFETY: the data word owns nothing, so dropping a waker is a no-op.
unsafe fn waker_drop(_data: *const ()) {}

/// Build the waker for task `id` of the executor registered at `reg`.
fn sim_waker(reg: u32, id: u32) -> Waker {
    let data = (((reg as usize) << 32) | id as usize) as *const ();
    #[allow(unsafe_code)]
    // SAFETY: the vtable above upholds the RawWaker contract for integer
    // data words — no function dereferences, frees or retains `data`.
    unsafe {
        Waker::from_raw(RawWaker::new(data, &SIM_WAKER_VTABLE))
    }
}

/// Deliver a wake encoded in a waker data word: look the executor up in
/// the thread-local registry and enqueue the task id. Stale wakes — the
/// simulation is gone, or the task slot is empty — are dropped here or at
/// poll time, exactly as the previous Arc-based wakers dropped them.
fn wake_encoded(data: *const ()) {
    let word = data as usize;
    let (reg, id) = ((word >> 32) as u32, word as u32);
    let inner = EXECUTORS.with(|ex| {
        ex.borrow()
            .get(reg as usize)
            .and_then(|slot| slot.as_ref())
            .and_then(Weak::upgrade)
    });
    if let Some(inner) = inner {
        inner.ready.borrow_mut().push_back(id);
    }
}

/// Claim a registry slot for a new executor.
fn register_executor(inner: &Rc<Inner>) -> u32 {
    EXECUTORS.with(|ex| {
        let mut ex = ex.borrow_mut();
        let weak = Rc::downgrade(inner);
        if let Some(slot) = ex.iter().position(Option::is_none) {
            ex[slot] = Some(weak);
            slot as u32
        } else {
            ex.push(Some(weak));
            (ex.len() - 1) as u32
        }
    })
}

// -------------------------------------------------------------- timer wheel

/// A registered timer, ordered by `(at, seq)` so ties break by
/// registration order and the run is deterministic.
struct TimerEnt {
    at: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEnt {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for TimerEnt {}
impl PartialOrd for TimerEnt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEnt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Ring size. With [`SLOT_NS`]-wide slots the ring spans ~4.2 ms of
/// virtual time — far beyond the microsecond-scale waits that dominate a
/// DES run, so heap (overflow) traffic is rare.
const WHEEL_SLOTS: usize = 4096;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;
/// Slot width in virtual ns (a power of two, so slot math is shift/mask).
const SLOT_NS: u64 = 1024;
/// Virtual time covered by the ring from its anchor.
const WHEEL_SPAN: u64 = WHEEL_SLOTS as u64 * SLOT_NS;

/// One ring slot: its timers, kept sorted *descending* by `(at, seq)`
/// when clean so the minimum pops O(1) from the back. Sorting is lazy —
/// a slot is only sorted when it is about to be popped from, which keeps
/// bursts of same-instant registrations (barriers) linear instead of
/// quadratic.
#[derive(Default)]
struct SlotQueue {
    ents: Vec<TimerEnt>,
    dirty: bool,
}

impl SlotQueue {
    fn sort_if_dirty(&mut self) {
        if self.dirty {
            // keys are unique ((at, seq); seq never repeats), so an
            // unstable sort is deterministic
            self.ents
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
            self.dirty = false;
        }
    }
}

/// Calendar-queue timer store: a ring of [`WHEEL_SLOTS`] slots of
/// [`SLOT_NS`] ns each covering `[start, start + WHEEL_SPAN)`, plus a
/// binary-heap overflow for deadlines beyond the span.
///
/// Invariants:
/// * every ring entry's `at` lies in `[start, start + WHEEL_SPAN)`, in the
///   slot at circular distance `(at - start) / SLOT_NS` from `cursor`;
/// * `start <= now` whenever the ring is non-empty (`start` only advances
///   to the window of a slot being popped, and pushes re-anchor an empty
///   ring at `now`);
/// * overflow entries had `at >= start + WHEEL_SPAN` when pushed. The
///   window may advance past that later, so [`TimerWheel::pop_min`]
///   compares the ring minimum against the overflow minimum by
///   `(at, seq)` — selection is therefore *identical* to a single global
///   heap regardless of which store an entry sits in.
struct TimerWheel {
    slots: Vec<SlotQueue>,
    /// One occupancy bit per slot; pop scans words, not slots.
    occupied: [u64; WHEEL_WORDS],
    /// Slot whose window starts at `start`.
    cursor: usize,
    /// Virtual time of the cursor slot's window start (multiple of
    /// [`SLOT_NS`]).
    start: u64,
    /// Entries in the ring (excluding overflow).
    ring_len: usize,
    /// Far-future entries.
    overflow: BinaryHeap<Reverse<TimerEnt>>,
}

impl TimerWheel {
    fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| SlotQueue::default()).collect(),
            occupied: [0; WHEEL_WORDS],
            cursor: 0,
            start: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Insert a timer. `now` re-anchors an empty ring so near-future
    /// deadlines keep landing in the ring after long jumps through
    /// heap-only stretches.
    fn push(&mut self, now: u64, ent: TimerEnt) {
        if self.ring_len == 0 {
            self.cursor = 0;
            self.start = now & !(SLOT_NS - 1);
        }
        if ent.at >= self.start + WHEEL_SPAN {
            self.overflow.push(Reverse(ent));
        } else {
            self.ring_insert(ent);
        }
    }

    fn ring_insert(&mut self, ent: TimerEnt) {
        debug_assert!((self.start..self.start + WHEEL_SPAN).contains(&ent.at));
        let d = ((ent.at - self.start) / SLOT_NS) as usize;
        let idx = (self.cursor + d) & (WHEEL_SLOTS - 1);
        let slot = &mut self.slots[idx];
        slot.ents.push(ent);
        slot.dirty = slot.ents.len() > 1;
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.ring_len += 1;
    }

    /// The occupied slot nearest the cursor (circularly), as
    /// `(slot index, circular distance)`. Ring slots at increasing
    /// circular distance cover disjoint, increasing time windows, so the
    /// first occupied slot holds the ring's minimum.
    fn first_occupied(&self) -> Option<(usize, usize)> {
        if self.ring_len == 0 {
            return None;
        }
        let (cw, cb) = (self.cursor / 64, self.cursor % 64);
        let head = self.occupied[cw] & (!0u64 << cb);
        if head != 0 {
            let idx = cw * 64 + head.trailing_zeros() as usize;
            return Some((idx, idx - self.cursor));
        }
        for k in 1..=WHEEL_WORDS {
            let wi = (cw + k) % WHEEL_WORDS;
            let mut w = self.occupied[wi];
            if wi == cw {
                // wrapped all the way around: only bits before the cursor
                w &= !(!0u64 << cb);
            }
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                let d = (idx + WHEEL_SLOTS - self.cursor) & (WHEEL_SLOTS - 1);
                return Some((idx, d));
            }
        }
        // INVARIANT: ring_len > 0 implies at least one occupancy bit is set;
        // insert/remove update the bitmap and counter together.
        unreachable!("ring_len > 0 but no occupancy bit set")
    }

    /// Remove and return the globally earliest `(at, seq)` timer.
    fn pop_min(&mut self) -> Option<TimerEnt> {
        let ring = self.first_occupied();
        let use_ring = match (&ring, self.overflow.peek()) {
            (&Some((idx, _)), Some(Reverse(h))) => {
                let slot = &mut self.slots[idx];
                slot.sort_if_dirty();
                // INVARIANT: first_occupied only returns slots whose occupancy
                // bit is set, and the bit is cleared when the slot drains.
                let m = slot.ents.last().expect("occupied slot is non-empty");
                (m.at, m.seq) < (h.at, h.seq)
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if use_ring {
            // INVARIANT: use_ring is only true in match arms where `ring` is Some.
            let (idx, d) = ring.expect("ring path requires an occupied slot");
            // advance the window to the popped slot
            self.start += d as u64 * SLOT_NS;
            self.cursor = idx;
            let slot = &mut self.slots[idx];
            slot.sort_if_dirty();
            // INVARIANT: same occupancy-bit claim as above — the popped slot
            // index came from a set bit in `occupied`.
            let ent = slot.ents.pop().expect("occupied slot is non-empty");
            if slot.ents.is_empty() {
                self.occupied[idx / 64] &= !(1 << (idx % 64));
            }
            self.ring_len -= 1;
            Some(ent)
        } else {
            // INVARIANT: the !use_ring arms all peeked Some from `overflow`,
            // and nothing pops it between the peek and here.
            let Reverse(ent) = self.overflow.pop().expect("overflow path peeked an entry");
            if self.ring_len == 0 {
                // the ring is drained and time jumped to a far deadline:
                // re-anchor there and pull newly-near overflow entries in,
                // restoring O(1) pops for the next stretch
                self.cursor = 0;
                self.start = ent.at & !(SLOT_NS - 1);
                while let Some(Reverse(h)) = self.overflow.peek() {
                    if h.at >= self.start + WHEEL_SPAN {
                        break;
                    }
                    // INVARIANT: the loop condition just peeked Some.
                    let Reverse(h) = self.overflow.pop().expect("peeked entry pops");
                    self.ring_insert(h);
                }
            }
            Some(ent)
        }
    }

    fn clear(&mut self) {
        if self.ring_len > 0 {
            for slot in &mut self.slots {
                slot.ents.clear();
                slot.dirty = false;
            }
            self.occupied = [0; WHEEL_WORDS];
            self.ring_len = 0;
        }
        self.overflow.clear();
    }
}

// --------------------------------------------------------------- task arena

/// Slab-backed task storage: dense `u32` ids, free-list reuse. A slot's
/// future is `None` while the task is being polled or after it finished;
/// ids only return to `free` on completion, so a slot is never reused
/// while its future is out being polled.
#[derive(Default)]
struct TaskArena {
    slots: Vec<Option<TaskFuture>>,
    free: Vec<u32>,
}

impl TaskArena {
    fn insert(&mut self, fut: TaskFuture) -> u32 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(fut);
                id
            }
            None => {
                // INVARIANT: more than u32::MAX concurrently-live tasks exceeds
                // any simulated cluster by orders of magnitude; treat as OOM.
                let id = u32::try_from(self.slots.len()).expect("task arena overflow");
                self.slots.push(Some(fut));
                id
            }
        }
    }

    fn take(&mut self, id: u32) -> Option<TaskFuture> {
        self.slots.get_mut(id as usize).and_then(Option::take)
    }

    fn restore(&mut self, id: u32, fut: TaskFuture) {
        self.slots[id as usize] = Some(fut);
    }

    fn release(&mut self, id: u32) {
        self.free.push(id);
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

// ---------------------------------------------------------------- executor

struct Inner {
    now: Cell<u64>,
    timer_seq: Cell<u64>,
    timers: RefCell<TimerWheel>,
    ready: RefCell<VecDeque<u32>>,
    tasks: RefCell<TaskArena>,
    live_tasks: Cell<usize>,
    spawned_total: Cell<u64>,
    rng: RefCell<ChaCha8Rng>,
    seed: u64,
    /// This executor's slot in the thread-local waker registry.
    registry_slot: Cell<u32>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // release the registry slot; wakers still in flight for this
        // executor fail the Weak upgrade and become no-ops
        let slot = self.registry_slot.get() as usize;
        let _ = EXECUTORS.try_with(|ex| {
            let mut ex = ex.borrow_mut();
            if let Some(s) = ex.get_mut(slot) {
                *s = None;
            }
        });
    }
}

/// A handle to the simulation: clock, scheduler and RNG.
///
/// `Sim` is a cheap reference-counted handle; clone it freely into tasks.
/// It is *not* `Send` — a simulation lives on one thread (parallelism comes
/// from running many independent `Sim`s, one per parameter point).
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

/// Result slot shared between a spawned task and its [`JoinHandle`].
struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Awaitable completion of a spawned task. Dropping it detaches the task.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            return Poll::Ready(v);
        }
        assert!(!st.finished, "JoinHandle polled after completion");
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl Sim {
    /// Create a fresh simulation with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        let inner = Rc::new(Inner {
            now: Cell::new(0),
            timer_seq: Cell::new(0),
            timers: RefCell::new(TimerWheel::new()),
            ready: RefCell::new(VecDeque::new()),
            tasks: RefCell::new(TaskArena::default()),
            live_tasks: Cell::new(0),
            spawned_total: Cell::new(0),
            rng: RefCell::new(ChaCha8Rng::seed_from_u64(seed)),
            seed,
            registry_slot: Cell::new(0),
        });
        inner.registry_slot.set(register_executor(&inner));
        Sim { inner }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.inner.now.get())
    }

    /// The seed this simulation was created with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Number of tasks that have been spawned over the sim's lifetime.
    pub fn spawned_total(&self) -> u64 {
        self.inner.spawned_total.get()
    }

    /// Number of tasks currently alive (not yet completed).
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Spawn a task; it runs concurrently (in virtual time) with its parent.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
            finished: false,
        }));
        let st2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut st = st2.borrow_mut();
            st.result = Some(out);
            st.finished = true;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        };
        let id = self.inner.tasks.borrow_mut().insert(Box::pin(wrapped));
        self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        self.inner
            .spawned_total
            .set(self.inner.spawned_total.get() + 1);
        self.inner.ready.borrow_mut().push_back(id);
        JoinHandle { state }
    }

    /// Register `waker` to fire at absolute time `at`.
    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) {
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        self.inner.timers.borrow_mut().push(
            self.inner.now.get(),
            TimerEnt {
                at: at.0,
                seq,
                waker,
            },
        );
    }

    /// Sleep for `dur` of simulated time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Sleep until the absolute instant `at` (no-op if already past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: at,
            registered: false,
        }
    }

    /// Convenience: sleep a number of nanoseconds.
    pub fn sleep_ns(&self, ns: u64) -> Sleep {
        self.sleep(SimDuration::from_ns(ns))
    }
    /// Convenience: sleep a number of microseconds.
    pub fn sleep_us(&self, us: u64) -> Sleep {
        self.sleep(SimDuration::from_us(us))
    }
    /// Convenience: sleep a number of milliseconds.
    pub fn sleep_ms(&self, ms: u64) -> Sleep {
        self.sleep(SimDuration::from_ms(ms))
    }

    /// Yield to other runnable tasks at the current instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { polled: false }
    }

    /// Uniform random `u64`.
    pub fn rand_u64(&self) -> u64 {
        self.inner.rng.borrow_mut().next_u64()
    }
    /// Uniform random float in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        self.inner.rng.borrow_mut().gen::<f64>()
    }
    /// Uniform random integer in `[0, n)`.
    pub fn rand_below(&self, n: u64) -> u64 {
        assert!(n > 0);
        self.inner.rng.borrow_mut().gen_range(0..n)
    }
    /// Exponentially distributed duration with the given mean (for jitter).
    pub fn rand_exp(&self, mean: SimDuration) -> SimDuration {
        let u: f64 = self.inner.rng.borrow_mut().gen_range(f64::EPSILON..1.0);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }
    /// Derive an independent, deterministic RNG stream for a component.
    pub fn derive_rng(&self, tag: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.inner.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag)
    }

    fn poll_task(&self, id: u32) {
        let fut = self.inner.tasks.borrow_mut().take(id);
        let Some(mut fut) = fut else {
            return; // stale wake of a finished task
        };
        let waker = sim_waker(self.inner.registry_slot.get(), id);
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.inner.tasks.borrow_mut().release(id);
                self.inner.live_tasks.set(self.inner.live_tasks.get() - 1);
            }
            Poll::Pending => {
                self.inner.tasks.borrow_mut().restore(id, fut);
            }
        }
    }

    fn drain_ready(&self) {
        loop {
            let id = self.inner.ready.borrow_mut().pop_front();
            match id {
                Some(id) => self.poll_task(id),
                None => break,
            }
        }
    }

    /// Run until no runnable tasks and no pending timers remain.
    ///
    /// Returns the number of tasks still alive (blocked forever — usually
    /// server loops waiting on mailboxes, or a deadlock if unexpected).
    pub fn run_until_quiescent(&self) -> usize {
        loop {
            self.drain_ready();
            let ent = self.inner.timers.borrow_mut().pop_min();
            match ent {
                Some(ent) => {
                    debug_assert!(ent.at >= self.inner.now.get(), "time went backwards");
                    self.inner.now.set(ent.at);
                    ent.waker.wake();
                }
                None => break,
            }
        }
        self.inner.live_tasks.get()
    }

    /// Spawn `f(sim)` as the root task and run until it completes.
    ///
    /// Background tasks that are still blocked when the root finishes are
    /// dropped (this is how server loops are torn down), breaking any
    /// `Sim`-handle reference cycles they hold.
    ///
    /// Panics if the simulation goes quiescent before the root completes —
    /// that is a deadlock in the simulated system.
    pub fn block_on<T: 'static, F, Fut>(&mut self, f: F) -> T
    where
        F: FnOnce(Sim) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        let handle = self.spawn(f(self.clone()));
        loop {
            self.drain_ready();
            if handle.state.borrow().finished {
                break;
            }
            let ent = self.inner.timers.borrow_mut().pop_min();
            match ent {
                Some(ent) => {
                    debug_assert!(ent.at >= self.inner.now.get(), "time went backwards");
                    self.inner.now.set(ent.at);
                    ent.waker.wake();
                }
                // INVARIANT: quiescence with the root unfinished is a deadlock
                // in the simulated system; aborting loudly is the contract
                // block_on documents.
                None => panic!(
                    "simulation deadlock: root task blocked with no pending events \
                     ({} tasks alive at {})",
                    self.inner.live_tasks.get(),
                    self.now()
                ),
            }
        }
        // Tear down survivors so Rc cycles through captured Sim handles break.
        self.inner.tasks.borrow_mut().clear();
        self.inner.timers.borrow_mut().clear();
        self.inner.ready.borrow_mut().clear();
        self.inner.live_tasks.set(0);
        let out = handle.state.borrow_mut().result.take();
        // INVARIANT: the loop above only exits when `finished` is set, and the
        // task stores its result before setting `finished`.
        out.expect("root task finished without storing a result")
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.sim.register_timer(deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Await every future in `futs`, concurrently, collecting outputs in order.
///
/// This is the kernel's `join_all`: each future is spawned as its own task so
/// they genuinely interleave in virtual time.
pub async fn join_all<T: 'static, F>(sim: &Sim, futs: Vec<F>) -> Vec<T>
where
    F: Future<Output = T> + 'static,
{
    let handles: Vec<JoinHandle<T>> = futs.into_iter().map(|f| sim.spawn(f)).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn time_starts_at_zero_and_advances() {
        let mut sim = Sim::new(1);
        let t = sim.block_on(|sim| async move {
            assert_eq!(sim.now(), SimTime::ZERO);
            sim.sleep_us(10).await;
            sim.sleep_us(5).await;
            sim.now()
        });
        assert_eq!(t, SimTime::from_us(15));
    }

    #[test]
    fn spawned_tasks_interleave() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        sim.block_on(move |sim| async move {
            let l = Rc::clone(&l2);
            let s = sim.clone();
            let h1 = sim.spawn({
                let l = Rc::clone(&l);
                let s = s.clone();
                async move {
                    s.sleep_us(2).await;
                    l.borrow_mut().push("b");
                }
            });
            let h2 = sim.spawn({
                let l = Rc::clone(&l);
                let s = s.clone();
                async move {
                    s.sleep_us(1).await;
                    l.borrow_mut().push("a");
                }
            });
            h1.await;
            h2.await;
            l2.borrow_mut().push("done");
        });
        assert_eq!(*log.borrow(), vec!["a", "b", "done"]);
    }

    #[test]
    fn join_all_orders_results() {
        let mut sim = Sim::new(7);
        let vals = sim.block_on(|sim| async move {
            let futs: Vec<_> = (0..10u64)
                .map(|i| {
                    let s = sim.clone();
                    async move {
                        // later indices sleep *less*, finishing first
                        s.sleep_us(10 - i).await;
                        i
                    }
                })
                .collect();
            join_all(&sim, futs).await
        });
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn same_deadline_fifo_order() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        sim.block_on(move |sim| async move {
            let mut handles = Vec::new();
            for i in 0..5 {
                let s = sim.clone();
                let l = Rc::clone(&l2);
                handles.push(sim.spawn(async move {
                    s.sleep_us(3).await;
                    l.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.await;
            }
        });
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim = Sim::new(seed);
            sim.block_on(|sim| async move {
                let futs: Vec<_> = (0..20u64)
                    .map(|i| {
                        let s = sim.clone();
                        async move {
                            let jitter = s.rand_below(1000);
                            s.sleep_ns(jitter).await;
                            s.now().as_ns() ^ i
                        }
                    })
                    .collect();
                join_all(&sim, futs).await
            })
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected() {
        let mut sim = Sim::new(1);
        sim.block_on(|sim| async move {
            // await a handle of a task that never finishes and nothing scheduled
            let h = sim.spawn(std::future::pending::<()>());
            h.await;
        });
    }

    #[test]
    fn background_tasks_dropped_after_root() {
        let mut sim = Sim::new(1);
        sim.block_on(|sim| async move {
            let _detached = sim.spawn(std::future::pending::<()>());
            sim.sleep_us(1).await;
        });
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn run_until_quiescent_reports_blocked() {
        let sim = Sim::new(1);
        let _h = sim.spawn(std::future::pending::<()>());
        let s = sim.clone();
        let _h2 = sim.spawn(async move {
            s.sleep_us(5).await;
        });
        let blocked = sim.run_until_quiescent();
        assert_eq!(blocked, 1);
        assert_eq!(sim.now(), SimTime::from_us(5));
    }

    #[test]
    fn rand_exp_is_positive_with_sane_mean() {
        let sim = Sim::new(3);
        let mean = SimDuration::from_us(100);
        let mut acc = 0u64;
        for _ in 0..1000 {
            let d = sim.rand_exp(mean);
            acc += d.as_ns();
        }
        let avg = acc as f64 / 1000.0;
        assert!((50_000.0..200_000.0).contains(&avg), "{avg}");
    }

    #[test]
    fn yield_now_runs_peers_first() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        sim.block_on(move |sim| async move {
            let l = Rc::clone(&l2);
            let peer = sim.spawn({
                let l = Rc::clone(&l);
                async move {
                    l.borrow_mut().push("peer");
                }
            });
            sim.yield_now().await;
            l2.borrow_mut().push("root");
            peer.await;
        });
        assert_eq!(*log.borrow(), vec!["peer", "root"]);
    }

    // ---- adversarial coverage for the wheel and the arena ------------

    /// Many sleepers on the same tick interleaved with sleepers in other
    /// slots: same-instant wakes must preserve registration order even
    /// when the slot went dirty repeatedly.
    #[test]
    fn same_tick_order_survives_dirty_slots() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        sim.block_on(move |sim| async move {
            let mut handles = Vec::new();
            // deadlines alternate between one shared instant and nearby
            // instants in the same / adjacent slots
            for i in 0..40u64 {
                let s = sim.clone();
                let l = Rc::clone(&l2);
                let ns = match i % 4 {
                    0 => 5_000,           // the shared instant
                    1 => 5_000,           // same instant, later seq
                    2 => 4_999,           // same slot, earlier instant
                    _ => 5_000 + i * 700, // nearby slots
                };
                handles.push(sim.spawn(async move {
                    s.sleep_ns(ns).await;
                    l.borrow_mut().push((ns, i));
                }));
            }
            for h in handles {
                h.await;
            }
        });
        let got = log.borrow().clone();
        let mut want = got.clone();
        // expected order: by (deadline, registration sequence)
        want.sort_by_key(|&(ns, i)| (ns, i));
        assert_eq!(got, want);
    }

    /// Deadlines far beyond the ring's span overflow into the fallback
    /// heap, and still fire in global `(deadline, seq)` order against
    /// ring-resident timers — including entries that migrate back into
    /// the ring when the window re-anchors.
    #[test]
    fn far_future_overflow_orders_with_ring() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        sim.block_on(move |sim| async move {
            let mut handles = Vec::new();
            // span is ~4.2 ms; mix near timers with multi-span jumps
            let ns_list = [
                1_000u64,
                WHEEL_SPAN + 7,
                3 * WHEEL_SPAN + 13,
                2_000,
                2 * WHEEL_SPAN,
                10 * WHEEL_SPAN + 1,
                WHEEL_SPAN - 1,
                WHEEL_SPAN, // first slot beyond the initial window
            ];
            for (i, &ns) in ns_list.iter().enumerate() {
                let s = sim.clone();
                let l = Rc::clone(&l2);
                handles.push(sim.spawn(async move {
                    s.sleep_ns(ns).await;
                    l.borrow_mut().push((ns, i));
                }));
            }
            for h in handles {
                h.await;
            }
        });
        let got = log.borrow().clone();
        let mut want = got.clone();
        want.sort_by_key(|&(ns, i)| (ns, i));
        assert_eq!(got, want);
    }

    /// Sleepers staged exactly at slot-width and span boundaries: the
    /// window re-anchors between bursts and boundary arithmetic must not
    /// misfile an entry (firing order is the ground truth).
    #[test]
    fn wheel_boundary_cascade() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(Vec::new()));
        let f2 = Rc::clone(&fired);
        sim.block_on(move |sim| async move {
            // sequential sleeps force repeated re-anchoring at deadlines
            // that sit exactly on slot / span edges
            for &ns in &[
                SLOT_NS - 1,
                1,       // lands exactly on a slot edge
                SLOT_NS, // a full slot
                WHEEL_SPAN - SLOT_NS,
                WHEEL_SPAN, // a full span in one jump
                7 * WHEEL_SPAN + 3,
            ] {
                sim.sleep_ns(ns).await;
                f2.borrow_mut().push(sim.now().as_ns());
            }
        });
        let got = fired.borrow().clone();
        let mut acc = 0u64;
        let want: Vec<u64> = [
            SLOT_NS - 1,
            1,
            SLOT_NS,
            WHEEL_SPAN - SLOT_NS,
            WHEEL_SPAN,
            7 * WHEEL_SPAN + 3,
        ]
        .iter()
        .map(|ns| {
            acc += ns;
            acc
        })
        .collect();
        assert_eq!(got, want);
    }

    /// Task ids are reused from the free list, and stale wakes aimed at a
    /// freed id are dropped instead of waking the slot's new occupant out
    /// of turn.
    #[test]
    fn slab_id_reuse_and_stale_wakes() {
        let mut sim = Sim::new(1);
        let spawned = sim.block_on(|sim| async move {
            // run several generations of short-lived tasks; ids recycle
            for _ in 0..8 {
                let futs: Vec<_> = (0..16u64)
                    .map(|i| {
                        let s = sim.clone();
                        async move {
                            s.sleep_ns(i).await;
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
            }
            sim.spawned_total()
        });
        // 8 generations * 16 tasks (+ the root and the per-join spawns)
        assert!(spawned >= 128);
        // the arena recycled ids instead of growing one slot per task
        assert!(sim.inner.tasks.borrow().slots.len() < 64);
        assert_eq!(sim.live_tasks(), 0);
    }

    /// A waker can outlive its simulation; waking it afterwards must be a
    /// no-op (the registry entry is gone), not a crash or a cross-sim wake.
    #[test]
    fn waker_outliving_sim_is_noop() {
        let captured: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
        {
            let mut sim = Sim::new(1);
            let c2 = Rc::clone(&captured);
            sim.block_on(move |sim| async move {
                let c = Rc::clone(&c2);
                let h = sim.spawn(async move {
                    std::future::poll_fn(move |cx| {
                        if c.borrow().is_none() {
                            *c.borrow_mut() = Some(cx.waker().clone());
                            Poll::Pending
                        } else {
                            Poll::Ready(())
                        }
                    })
                    .await;
                });
                sim.sleep_ns(1).await;
                captured_wake(&c2);
                h.await;
            });
        }
        // the sim is dropped; firing the captured waker again must not panic
        captured_wake(&captured);

        fn captured_wake(c: &Rc<RefCell<Option<Waker>>>) {
            let w = c.borrow().clone();
            if let Some(w) = w {
                w.wake_by_ref();
            }
        }
    }

    /// Two live sims on one thread: wakes route to the right executor via
    /// the registry, never across simulations.
    #[test]
    fn concurrent_sims_do_not_cross_wake() {
        let mut a = Sim::new(1);
        let mut b = Sim::new(2);
        let ta = a.block_on(|sim| async move {
            sim.sleep_us(3).await;
            sim.now().as_ns()
        });
        let tb = b.block_on(|sim| async move {
            sim.sleep_us(5).await;
            sim.now().as_ns()
        });
        assert_eq!(ta, 3_000);
        assert_eq!(tb, 5_000);
        // interleave again on fresh handles to exercise registry reuse
        let ta2 = a.block_on(|sim| async move {
            sim.sleep_us(1).await;
            sim.now().as_ns()
        });
        assert_eq!(ta2, 4_000);
    }
}
