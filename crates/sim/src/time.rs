//! Virtual time: nanosecond-resolution instants and durations.
//!
//! `u64` nanoseconds give ~584 simulated years of range, far beyond any
//! benchmark run. Arithmetic is saturating on the low side and panics on
//! overflow in debug builds, like `std::time`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock (nanoseconds since sim start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Duration elapsed since `earlier`; zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Convert a float second count, rounding up to the next nanosecond so a
    /// nonzero cost never collapses to a free operation.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e9).ceil() as u64)
    }
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}
impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}
impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_ns(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_ns(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1 ns in float seconds must not become zero.
        assert_eq!(SimDuration::from_secs_f64(1e-10).as_ns(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_ns(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_us(10) + SimDuration::from_us(5);
        assert_eq!(t, SimTime::from_us(15));
        assert_eq!(t - SimTime::from_us(5), SimDuration::from_us(10));
        // saturating subtraction: "since a later time" is zero
        assert_eq!(SimTime::from_us(5) - SimTime::from_us(9), SimDuration::ZERO);
        assert_eq!(SimDuration::from_us(4) * 3, SimDuration::from_us(12));
        assert_eq!(SimDuration::from_us(12) / 3, SimDuration::from_us(4));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_us(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
