//! Property test for the timer-wheel executor: for *any* random workload
//! of sleeping tasks, the order in which events fire must be exactly the
//! order the previous `BinaryHeap`-based executor produced — global
//! `(deadline, registration sequence)` order. The reference below *is*
//! that old scheduler, reduced to its scheduling decision: one global
//! min-heap popped one timer at a time, with each woken task re-arming
//! its next timer (taking the next sequence number) before the following
//! pop.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use proptest::prelude::*;

use daos_sim::Sim;

/// `(fire time, task index, step index)` — the observable event record.
type Event = (u64, usize, usize);

/// The old executor's schedule, replayed in plain code: timers are
/// ordered by `(deadline, seq)`, seq is assigned at registration, and a
/// popped task re-registers its next sleep immediately (before the next
/// pop), exactly as `drain_ready` ran between timer pops.
fn reference_order(workload: &[Vec<u64>]) -> Vec<Event> {
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (t, delays) in workload.iter().enumerate() {
        if let Some(&d) = delays.first() {
            heap.push(Reverse((d, seq, t, 0)));
            seq += 1;
        }
    }
    let mut events = Vec::new();
    while let Some(Reverse((at, _, t, step))) = heap.pop() {
        events.push((at, t, step));
        if let Some(&d) = workload[t].get(step + 1) {
            heap.push(Reverse((at + d, seq, t, step + 1)));
            seq += 1;
        }
    }
    events
}

/// Run the same workload on the real executor, recording events as each
/// sleep completes.
fn executor_order(workload: &[Vec<u64>]) -> Vec<Event> {
    let mut sim = Sim::new(0xE0ED);
    let log: Rc<RefCell<Vec<Event>>> = Rc::new(RefCell::new(Vec::new()));
    let l2 = Rc::clone(&log);
    let workload = workload.to_vec();
    sim.block_on(move |sim| async move {
        let mut handles = Vec::new();
        for (t, delays) in workload.into_iter().enumerate() {
            let s = sim.clone();
            let l = Rc::clone(&l2);
            handles.push(sim.spawn(async move {
                for (step, d) in delays.into_iter().enumerate() {
                    s.sleep_ns(d).await;
                    l.borrow_mut().push((s.now().as_ns(), t, step));
                }
            }));
        }
        for h in handles {
            h.await;
        }
    });
    Rc::try_unwrap(log).expect("all tasks done").into_inner()
}

/// Per-step delay: mostly short (deep inside the wheel's span), sometimes
/// slot-scale, sometimes far beyond the span (forcing overflow-heap
/// traffic and window re-anchoring). Ties are likely: short delays repeat.
fn delay() -> impl Strategy<Value = u64> {
    prop_oneof![
        1u64..5_000,
        1u64..5_000,
        1u64..5_000,
        prop_oneof![Just(1024u64), Just(1023), Just(1025), Just(4096)],
        4_000_000u64..20_000_000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mix of sleepers fires in exactly the old heap executor's
    /// `(deadline, seq)` order, ties and far-future overflow included.
    #[test]
    fn wheel_schedule_matches_heap_reference(
        workload in prop::collection::vec(
            prop::collection::vec(delay(), 0..12),
            1..16,
        ),
    ) {
        let want = reference_order(&workload);
        let got = executor_order(&workload);
        prop_assert_eq!(got, want);
    }
}
