//! Pool-map exclusion and placement churn — the administrative side of an
//! object store: what moves when a target dies?
//!
//! Uses the placement substrate directly (no I/O): places a population of
//! objects, excludes targets one by one, and reports how many shards
//! relocate at each step and how balanced the survivors stay. The
//! rejection-sampled placement gives near-minimal churn, like DAOS's
//! jump-map.
//!
//! ```text
//! cargo run -p daos-tests --example rebuild_exclusion
//! ```

use daos_placement::{load_spread, place, ObjectClass, ObjectId, PoolMap};

const OBJECTS: u64 = 2000;

fn layouts(map: &PoolMap, class: ObjectClass) -> Vec<daos_placement::Layout> {
    (0..OBJECTS)
        .map(|i| place(ObjectId::new(i, i.wrapping_mul(0x9E37)), class, map))
        .collect()
}

fn main() {
    for class in [ObjectClass::S1, ObjectClass::S4, ObjectClass::RP_3G1] {
        println!("== class {class} ==");
        let mut map = PoolMap::new(16, 8);
        let mut prev = layouts(&map, class);
        let shards_total: usize = prev.iter().map(|l| l.shards.len()).sum();
        for step in 1..=4u32 {
            let victim = step * 13 % map.target_count();
            map.exclude(victim);
            let cur = layouts(&map, class);
            let moved: usize = prev
                .iter()
                .zip(&cur)
                .map(|(a, b)| {
                    a.shards
                        .iter()
                        .zip(&b.shards)
                        .filter(|(x, y)| x != y)
                        .count()
                })
                .sum();
            let (mean, sd, max) = load_spread(&cur, &map);
            let ideal = shards_total as f64 / map.active_target_count() as f64;
            println!(
                "  excluded target {victim:>3} (map v{}): {moved:>5}/{shards_total} shards moved \
                 ({:.1}% vs {:.1}% minimum), balance mean {mean:.1} sd {sd:.1} max {max} \
                 (ideal {ideal:.1})",
                map.version(),
                100.0 * moved as f64 / shards_total as f64,
                100.0 / map.active_target_count() as f64 + 100.0 / map.target_count() as f64,
            );
            // nothing may sit on an excluded target
            for l in &cur {
                for &t in &l.shards {
                    assert!(!map.is_excluded(t), "shard left on dead target {t}");
                }
            }
            prev = cur;
        }
    }
    println!("\nall layouts verified: no shard on an excluded target");
}
