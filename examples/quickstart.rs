//! Quickstart: stand up a simulated DAOS system, store and fetch data
//! through every layer of the stack, and print what it cost in simulated
//! time.
//!
//! ```text
//! cargo run -p daos-tests --example quickstart
//! ```

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_dfs::{Dfs, DfsConfig};
use daos_dfuse::{DfuseConfig, DfuseMount, OpenFlags};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::units::{fmt_bytes, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

fn main() {
    let mut sim = Sim::new(7);
    sim.block_on(|sim| async move {
        // 1. a DAOS system: 2 servers x 1 engine, 4 targets each,
        //    1 client node — all simulated, including the RAFT pool service
        let cluster = Cluster::build(&sim, ClusterConfig::tiny(1));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.expect("pool connect");
        println!("[{}] connected to pool", sim.now());

        // 2. the raw object API: a key-value object
        let cont = pool.create_container(&sim, 7).await.expect("container");
        let kv = cont.object(ObjectId::new(1, 1), ObjectClass::S1).kv();
        kv.put(
            &sim,
            "greeting",
            Payload::bytes(&b"hello, object store"[..]),
        )
        .await
        .unwrap();
        let v = kv.get(&sim, "greeting").await.unwrap().unwrap();
        println!(
            "[{}] kv round trip: {:?}",
            sim.now(),
            std::str::from_utf8(&v.materialize()).unwrap()
        );

        // 3. the array API: a striped 8 MiB object
        let arr = cont.object(ObjectId::new(1, 2), ObjectClass::SX).array(MIB);
        let t0 = sim.now();
        arr.write(&sim, 0, Payload::pattern(42, 8 * MIB))
            .await
            .unwrap();
        println!(
            "[{}] wrote {} via daos_array (SX) in {}",
            sim.now(),
            fmt_bytes(8 * MIB),
            sim.now() - t0
        );

        // 4. a filesystem on top: DFS + a DFuse POSIX mount
        let dfs = Dfs::mount(&sim, &pool, 8, DfsConfig::default(), 1)
            .await
            .expect("dfs mount");
        let mount = DfuseMount::new(Rc::clone(&dfs), DfuseConfig::default());
        mount.mkdir(&sim, "/results").await.unwrap();
        let f = mount
            .open(&sim, "/results/run-001.dat", OpenFlags::create())
            .await
            .unwrap();
        let t0 = sim.now();
        f.pwrite(&sim, 0, Payload::pattern(1, 4 * MIB))
            .await
            .unwrap();
        println!(
            "[{}] wrote {} through the DFuse mount in {}",
            sim.now(),
            fmt_bytes(4 * MIB),
            sim.now() - t0
        );
        let back = f.pread_bytes(&sim, MIB, 1024).await.unwrap();
        assert_eq!(
            back,
            Payload::pattern(1, 4 * MIB).slice(MIB, 1024).materialize()
        );
        println!(
            "[{}] read-back verified; stat: {:?}",
            sim.now(),
            mount.stat(&sim, "/results/run-001.dat").await.unwrap()
        );
        println!(
            "\ntotal simulated time {}, host events {}",
            sim.now(),
            sim.spawned_total()
        );
    });
}
