//! Numerical-weather-prediction field I/O — the workload that motivated
//! the paper (ECMWF's object store for forecast output; refs [7][8][20]).
//!
//! A forecast model writes thousands of ~2 MiB *fields* per output step,
//! indexed by semantic keys (step, level, parameter); downstream product
//! generation immediately reads them back in a different order. This maps
//! naturally onto DAOS: each field is one array object, the index is a KV
//! object — no POSIX in sight.
//!
//! ```text
//! cargo run -p daos-tests --example weather_fields --release
//! ```

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::executor::join_all;
use daos_sim::units::{gib_per_sec, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

const WRITERS: u64 = 32; // model I/O server ranks
const READERS: u64 = 16; // product-generation workers
const STEPS: u64 = 4; // output steps
const FIELDS_PER_STEP: u64 = 128; // 2 MiB each
const FIELD_BYTES: u64 = 2 * MIB;

fn field_oid(step: u64, field: u64) -> ObjectId {
    ObjectId::new(0xF1E1D, step << 32 | field)
}

fn field_key(step: u64, field: u64) -> String {
    // param/level encoded the way a real semantic index would
    format!("step={step},param={},level={}", field % 16, field / 16)
}

fn main() {
    let mut sim = Sim::new(0xECF);
    sim.block_on(|sim| async move {
        let cluster = Cluster::build(&sim, ClusterConfig::nextgenio(4));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.expect("connect");
        let cont = pool.create_container(&sim, 99).await.expect("container");
        let index = cont.object(ObjectId::new(0xF1E1D, 0), ObjectClass::S1).kv();

        // ---- forecast output: WRITERS ranks write all fields of a step,
        //      then publish them in the index --------------------------------
        let t0 = sim.now();
        for step in 0..STEPS {
            let futs: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let cont = cont.clone();
                    let index = index.clone();
                    let sim = sim.clone();
                    async move {
                        let mut f = w;
                        while f < FIELDS_PER_STEP {
                            let arr = cont.object(field_oid(step, f), ObjectClass::S2).array(MIB);
                            arr.write(&sim, 0, Payload::pattern(step << 8 | f, FIELD_BYTES))
                                .await
                                .unwrap();
                            // publish: semantic key -> object id
                            let oid = field_oid(step, f);
                            let mut loc = oid.hi.to_le_bytes().to_vec();
                            loc.extend_from_slice(&oid.lo.to_le_bytes());
                            index
                                .put(&sim, field_key(step, f), Payload::bytes(loc))
                                .await
                                .unwrap();
                            f += WRITERS;
                        }
                    }
                })
                .collect();
            join_all(&sim, futs).await;
        }
        let write_t = sim.now() - t0;
        let total = STEPS * FIELDS_PER_STEP * FIELD_BYTES;
        println!(
            "forecast output: {} fields, {:.2} GiB/s aggregate",
            STEPS * FIELDS_PER_STEP,
            gib_per_sec(total, write_t.as_secs_f64())
        );

        // ---- product generation: READERS look fields up by key and read
        //      them back in level-major order --------------------------------
        let t0 = sim.now();
        let futs: Vec<_> = (0..READERS)
            .map(|r| {
                let cont = cont.clone();
                let index = index.clone();
                let sim = sim.clone();
                async move {
                    let mut checked = 0u64;
                    let mut f = r;
                    while f < FIELDS_PER_STEP {
                        for step in 0..STEPS {
                            let loc = index
                                .get(&sim, field_key(step, f))
                                .await
                                .unwrap()
                                .expect("published field");
                            let bytes = loc.materialize();
                            let oid = ObjectId::new(
                                u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
                                u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
                            );
                            let arr = cont.object(oid, ObjectClass::S2).array(MIB);
                            let data = arr.read(&sim, 0, FIELD_BYTES).await.unwrap();
                            let got: u64 = data
                                .iter()
                                .filter(|s| s.data.is_some())
                                .map(|s| s.len)
                                .sum();
                            assert_eq!(got, FIELD_BYTES, "field {step}/{f} incomplete");
                            checked += 1;
                        }
                        f += READERS;
                    }
                    checked
                }
            })
            .collect();
        let counts = join_all(&sim, futs).await;
        let read_t = sim.now() - t0;
        println!(
            "product generation: {} field reads, {:.2} GiB/s aggregate",
            counts.iter().sum::<u64>(),
            gib_per_sec(total, read_t.as_secs_f64())
        );
        println!("simulated wall time {}", sim.now());
    });
}
