//! Checkpoint/restart through MPI-IO: a classic shared-file HPC pattern.
//!
//! 64 MPI ranks write one checkpoint to a single shared file through the
//! ROMIO-style MPI-IO layer over the DFuse mount, then restart and read it
//! back. On DAOS the shared file costs about the same as file-per-process
//! — the paper's headline observation — because DFS maps the file onto a
//! lock-free, epoch-versioned SX object.
//!
//! ```text
//! cargo run -p daos-tests --example checkpoint_restart --release
//! ```

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_dfs::{Dfs, DfsConfig};
use daos_dfuse::{DfuseConfig, DfuseMount, OpenFlags};
use daos_mpi::MpiWorld;
use daos_mpiio::{Hints, MpiFile, RankFile};
use daos_placement::ObjectClass;
use daos_sim::executor::join_all;
use daos_sim::units::{fmt_bytes, gib_per_sec, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

const NODES: u32 = 4;
const PPN: u32 = 16;
const PER_RANK: u64 = 32 * MIB;

fn main() {
    let mut sim = Sim::new(0xC4E);
    sim.block_on(|sim| async move {
        let cluster = Cluster::build(&sim, ClusterConfig::nextgenio(NODES));
        // one mount per client node, as dfuse runs per node
        let mut mounts = Vec::new();
        for i in 0..NODES {
            let client = DaosClient::new(Rc::clone(&cluster), i);
            let pool = client.connect(&sim).await.expect("connect");
            let dfs = Dfs::mount(&sim, &pool, 5, DfsConfig::default(), i as u64)
                .await
                .expect("mount");
            mounts.push(DfuseMount::new(dfs, DfuseConfig::default()));
        }
        let ranks = (NODES * PPN) as usize;
        let world = MpiWorld::new(
            Rc::clone(&cluster.fabric),
            (0..ranks)
                .map(|r| cluster.client_node(r as u32 / PPN))
                .collect(),
        );

        // rank 0 creates the checkpoint file (SX: stripe over everything)
        mounts[0]
            .open(&sim, "/ckpt.0001", OpenFlags::create_with(ObjectClass::SX))
            .await
            .expect("create");

        // ---- checkpoint: collective open + independent large writes ----
        let t0 = sim.now();
        let futs: Vec<_> = (0..ranks)
            .map(|r| {
                let mount = Rc::clone(&mounts[r / PPN as usize]);
                let world = Rc::clone(&world);
                let sim = sim.clone();
                async move {
                    let f = mount
                        .open(&sim, "/ckpt.0001", OpenFlags::read())
                        .await
                        .expect("open");
                    let mf =
                        MpiFile::open(&sim, world.rank(r), RankFile::Posix(f), Hints::default())
                            .await;
                    let base = r as u64 * PER_RANK;
                    for k in 0..PER_RANK / MIB {
                        mf.write_at(&sim, base + k * MIB, Payload::pattern(r as u64, MIB))
                            .await
                            .unwrap();
                    }
                    mf.close(&sim).await;
                }
            })
            .collect();
        join_all(&sim, futs).await;
        let t_ckpt = sim.now() - t0;
        let total = ranks as u64 * PER_RANK;
        println!(
            "checkpoint: {} from {ranks} ranks in {} ({:.2} GiB/s)",
            fmt_bytes(total),
            t_ckpt,
            gib_per_sec(total, t_ckpt.as_secs_f64())
        );

        // ---- restart: every rank reads its slice back and verifies ----
        let t0 = sim.now();
        let futs: Vec<_> = (0..ranks)
            .map(|r| {
                let mount = Rc::clone(&mounts[r / PPN as usize]);
                let world = Rc::clone(&world);
                let sim = sim.clone();
                async move {
                    let f = mount
                        .open(&sim, "/ckpt.0001", OpenFlags::read())
                        .await
                        .expect("open");
                    let mf =
                        MpiFile::open(&sim, world.rank(r), RankFile::Posix(f), Hints::default())
                            .await;
                    let base = r as u64 * PER_RANK;
                    // spot-verify the first MiB, stream the rest
                    let segs = mf.read_at(&sim, base, MIB).await.unwrap();
                    let got = daos_mpiio::assemble(&segs, base, MIB).materialize();
                    assert_eq!(
                        got,
                        Payload::pattern(r as u64, MIB).materialize(),
                        "rank {r} corrupt restart data"
                    );
                    for k in 1..PER_RANK / MIB {
                        mf.read_at(&sim, base + k * MIB, MIB).await.unwrap();
                    }
                    mf.close(&sim).await;
                }
            })
            .collect();
        join_all(&sim, futs).await;
        let t_restart = sim.now() - t0;
        println!(
            "restart:    {} verified in {} ({:.2} GiB/s)",
            fmt_bytes(total),
            t_restart,
            gib_per_sec(total, t_restart.as_secs_f64())
        );
    });
}
